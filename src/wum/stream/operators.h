// Stock record operators for the reactive pipeline.

#ifndef WUM_STREAM_OPERATORS_H_
#define WUM_STREAM_OPERATORS_H_

#include <functional>
#include <memory>
#include <optional>

#include "wum/clf/log_filter.h"
#include "wum/stream/pipeline.h"

namespace wum {

/// Drops records rejected by a LogFilter (streaming counterpart of the
/// batch FilterChain).
class FilterOperator : public RecordOperator {
 public:
  explicit FilterOperator(std::unique_ptr<LogFilter> filter)
      : filter_(std::move(filter)) {}

  Status Accept(const LogRecord& record) override {
    if (!filter_->Keep(record)) {
      ++dropped_;
      return Status::OK();
    }
    return Emit(record);
  }

  std::uint64_t dropped() const { return dropped_; }

 private:
  std::unique_ptr<LogFilter> filter_;
  std::uint64_t dropped_ = 0;
};

/// Applies a function to each record; returning nullopt drops it.
class TransformOperator : public RecordOperator {
 public:
  using Fn = std::function<std::optional<LogRecord>(const LogRecord&)>;

  explicit TransformOperator(Fn fn) : fn_(std::move(fn)) {}

  Status Accept(const LogRecord& record) override {
    std::optional<LogRecord> mapped = fn_(record);
    if (!mapped.has_value()) return Status::OK();
    return Emit(*mapped);
  }

 private:
  Fn fn_;
};

/// Pass-through stage counting records and tracking the watermark (the
/// largest timestamp seen), for pipeline observability.
class WatermarkOperator : public RecordOperator {
 public:
  Status Accept(const LogRecord& record) override {
    ++count_;
    if (record.timestamp > watermark_) watermark_ = record.timestamp;
    return Emit(record);
  }

  std::uint64_t count() const { return count_; }
  TimeSeconds watermark() const { return watermark_; }

 private:
  std::uint64_t count_ = 0;
  TimeSeconds watermark_ = 0;
};

/// Rejects out-of-order records beyond a tolerated lateness, so the
/// incremental sessionizers can rely on (bounded) stream order.
class OrderGuardOperator : public RecordOperator {
 public:
  /// Records older than watermark - `max_lateness` are dropped.
  explicit OrderGuardOperator(TimeSeconds max_lateness)
      : max_lateness_(max_lateness) {}

  Status Accept(const LogRecord& record) override {
    if (record.timestamp > watermark_) watermark_ = record.timestamp;
    if (record.timestamp + max_lateness_ < watermark_) {
      ++late_dropped_;
      return Status::OK();
    }
    return Emit(record);
  }

  std::uint64_t late_dropped() const { return late_dropped_; }

 private:
  TimeSeconds max_lateness_;
  TimeSeconds watermark_ = 0;
  std::uint64_t late_dropped_ = 0;
};

}  // namespace wum

#endif  // WUM_STREAM_OPERATORS_H_
