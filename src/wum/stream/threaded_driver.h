// Two-thread pipeline driver: the caller's thread produces records while
// a worker thread runs the pipeline, decoupled by a bounded queue. This
// is the "reactive" deployment shape — the ingest path (the web server
// appending to its log) never waits on session reconstruction, which is
// the paper's argument for reactive over proactive processing.

#ifndef WUM_STREAM_THREADED_DRIVER_H_
#define WUM_STREAM_THREADED_DRIVER_H_

#include <thread>

#include "wum/stream/pipeline.h"
#include "wum/stream/spsc_queue.h"

namespace wum {

/// Owns the worker thread and the queue feeding a RecordSink.
class ThreadedDriver {
 public:
  /// `sink` must outlive the driver. `queue_capacity` bounds the number
  /// of in-flight records.
  explicit ThreadedDriver(RecordSink* sink, std::size_t queue_capacity = 1024);

  /// Joins the worker (calling Finish first if the caller forgot).
  ~ThreadedDriver();

  ThreadedDriver(const ThreadedDriver&) = delete;
  ThreadedDriver& operator=(const ThreadedDriver&) = delete;

  /// Enqueues one record; blocks when the queue is full. Returns
  /// FailedPrecondition after Finish, or the sink's first error.
  Status Offer(const LogRecord& record);

  /// Signals end of stream, waits for the worker to drain, and returns
  /// the pipeline's final status (including the sink's Finish).
  Status Finish();

 private:
  void Run();

  SpscQueue<LogRecord> queue_;
  RecordSink* sink_;
  std::thread worker_;
  std::mutex status_mutex_;
  Status first_error_;   // sticky first failure from the worker
  bool finished_ = false;
};

}  // namespace wum

#endif  // WUM_STREAM_THREADED_DRIVER_H_
