// Two-thread pipeline driver: the caller's thread produces records while
// a worker thread runs the pipeline, decoupled by a bounded queue. This
// is the "reactive" deployment shape — the ingest path (the web server
// appending to its log) never waits on session reconstruction, which is
// the paper's argument for reactive over proactive processing.

#ifndef WUM_STREAM_THREADED_DRIVER_H_
#define WUM_STREAM_THREADED_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/pipeline.h"
#include "wum/stream/spsc_queue.h"

namespace wum {

/// Optional observability handles for one driver (see wum/obs/metrics.h).
/// Default-constructed (disabled) handles make every update a no-op and
/// keep the clock untouched, so an uninstrumented driver pays only a
/// couple of predictable branches per record.
struct DriverMetrics {
  /// Mirrors blocked_enqueues() into a registry counter.
  obs::Counter blocked_enqueues;
  /// Microseconds the producer spent blocked on a full queue (the
  /// kBlock backpressure stall time). Only accumulated on the
  /// already-slow blocked path, so enabling it costs the hot path
  /// nothing.
  obs::Counter blocked_wait_us;
  /// Mirrors queue_high_watermark() into a registry gauge.
  obs::Gauge queue_high_watermark;
  /// Wall time the worker spends draining one record through the sink
  /// (operators + sessionizer + emission), in microseconds.
  obs::Histogram drain_latency_us;
  /// Optional span tracer: each drained record becomes a "drain" span
  /// tagged shard=trace_shard, seq=<records drained before it>.
  obs::Tracer tracer;
  std::uint64_t trace_shard = 0;
};

/// Failure-domain hooks, called on the worker thread. Both optional;
/// without them every pipeline error is sticky and fatal to the driver
/// (the historical fail-fast behavior). The sharded engine installs
/// them in ErrorPolicy::kDegrade mode to quarantine records instead.
struct DriverHooks {
  /// The pipeline rejected `record` with `status`. Return true when the
  /// failure is handled (record quarantined, worker keeps going); false
  /// makes `status` the driver's sticky error.
  std::function<bool(const LogRecord&, const Status&)> on_record_error;
  /// `record` was drained and discarded after the sticky error
  /// `first_error` was already set (the shard is dead; the record never
  /// entered the pipeline).
  std::function<void(const LogRecord&, const Status&)> on_discard;
  /// Every record of `batch` has been handled (processed, quarantined
  /// or discarded); the batch is handed over for buffer recycling — its
  /// records' string capacities can be reused by the producer to stage
  /// later batches without reallocating. Runs on the worker thread,
  /// before the drained count is published.
  std::function<void(RecordBatch&&)> on_batch_drained;
  /// Called on the worker thread just before a batch's records drain,
  /// with the obs::internal::NowMicros() stamp captured when the
  /// producer offered the batch (0 when the stamp was lost to a race).
  /// Installing this hook is what turns on accept-time stamping; when
  /// absent the offer path never reads the clock. The sharded engine
  /// uses it to measure ingest→emit latency at the emit hub.
  std::function<void(double accept_stamp_us)> on_batch_start;
};

/// Owns the worker thread and the queue feeding a RecordSink.
class ThreadedDriver {
 public:
  /// `sink` must outlive the driver. `queue_capacity` bounds the number
  /// of in-flight records. `metrics` handles and `hooks` are copied
  /// before the worker starts; their referents must outlive the driver.
  explicit ThreadedDriver(RecordSink* sink, std::size_t queue_capacity = 1024,
                          DriverMetrics metrics = {}, DriverHooks hooks = {});

  /// Joins the worker (calling Finish first if the caller forgot).
  ~ThreadedDriver();

  ThreadedDriver(const ThreadedDriver&) = delete;
  ThreadedDriver& operator=(const ThreadedDriver&) = delete;

  /// Enqueues a batch of records with one queue hand-off; blocks when
  /// the queue is full (counted once in blocked_enqueues). On OK the
  /// batch has been moved into the queue; on any error it is left
  /// untouched in `*batch` so the caller can quarantine or retry the
  /// records. Returns FailedPrecondition after Finish, or the sink's
  /// first error — including while blocked: a producer waiting on a
  /// full queue whose worker just died is woken and handed the sticky
  /// error instead of waiting forever. An empty batch is a no-op.
  Status OfferBatch(RecordBatch* batch);

  /// Convenience wrapper: enqueues one record as a batch of one, with
  /// semantics identical to the historical per-record Offer.
  Status Offer(const LogRecord& record);

  /// Non-blocking variant: when the queue is full, sets `*accepted` to
  /// false and returns OK without enqueueing (the batch stays in
  /// `*batch`; shed accounting is the caller's). Otherwise behaves like
  /// OfferBatch with `*accepted = true`.
  Status TryOfferBatch(RecordBatch* batch, bool* accepted);

  /// Single-record convenience over TryOfferBatch.
  Status TryOffer(const LogRecord& record, bool* accepted);

  /// Signals end of stream, waits for the worker to drain, and returns
  /// the pipeline's final status (including the sink's Finish).
  Status Finish();

  /// Quiescence barrier: blocks the producer until every record it ever
  /// enqueued has been fully handled by the worker (processed,
  /// quarantined or discarded) and the queue is empty, or the worker
  /// recorded its sticky error — in which case that error is returned.
  /// On OK the chain below the driver is at rest and will stay at rest
  /// until the producer offers again, which makes its state safe to
  /// snapshot. Producer thread only, like Offer.
  Status WaitIdle();

  /// Drain barrier that ignores the sticky error: blocks until every
  /// record ever enqueued has been handled (processed, quarantined or
  /// discarded), even on a dead driver whose worker is still discarding
  /// its queue. After it returns the discard hook is quiet, so
  /// quarantine accounting for everything offered so far is complete —
  /// the barrier a checkpoint needs over a failed shard, where WaitIdle
  /// returns early. Producer thread only, like Offer.
  void WaitDrained();

  /// Number of Offer calls that found the queue full and had to block —
  /// the backpressure signal of this driver.
  std::uint64_t blocked_enqueues() const {
    return blocked_enqueues_.load(std::memory_order_relaxed);
  }

  /// Largest queue depth observed right after an enqueue.
  std::size_t queue_high_watermark() const {
    return queue_high_watermark_.load(std::memory_order_relaxed);
  }

  /// Records currently queued (the live backlog, not the watermark).
  /// Safe from any thread; scrape-time probes read this.
  std::size_t queue_depth() const { return queue_.weight(); }

  /// True once the worker recorded a sticky error (the shard is dead).
  /// Safe from any thread.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Snapshot of the sticky error (OK while healthy). Safe from any
  /// thread.
  Status first_error() const;

 private:
  void Run();
  Status CheckOfferable();
  void NoteDepth(std::size_t depth);
  /// Producer side of the accept-stamp channel (no-ops without the
  /// on_batch_start hook): push before enqueueing, take back on an
  /// enqueue that failed or shed.
  void PushStamp();
  void UnpushStamp();
  /// Worker side: the stamp for the batch just popped (0 when absent).
  double PopStamp();
  /// Worker side of WaitIdle: counts `count` fully handled records and
  /// wakes a waiting producer when one is registered.
  void NoteDrained(std::uint64_t count);

  SpscQueue<RecordBatch> queue_;
  RecordSink* sink_;
  DriverMetrics metrics_;
  DriverHooks hooks_;
  std::thread worker_;
  mutable std::mutex status_mutex_;
  Status first_error_;   // sticky first failure from the worker
  // Mirrors !first_error_.ok(); readable without the mutex so blocked
  // producers (PushUnless) and the drain path can poll it cheaply.
  std::atomic<bool> failed_{false};
  bool finished_ = false;
  std::atomic<std::uint64_t> blocked_enqueues_{0};
  std::atomic<std::size_t> queue_high_watermark_{0};
  // WaitIdle state. pushed_ is touched only by the producer thread;
  // drained_ only by the worker; both are read cross-thread under
  // idle_mutex_'s condvar protocol. The seq_cst store of idle_waiting_
  // (producer) against the seq_cst drained_ increment + idle_waiting_
  // load (worker) guarantees the worker either sees the waiter and
  // notifies, or the waiter's predicate already sees the final count.
  std::uint64_t pushed_ = 0;
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<bool> idle_waiting_{false};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  // Accept stamps riding alongside the queue (same FIFO order: one
  // producer pushes both, one worker pops both). Touched once per
  // *batch* and only when on_batch_start is installed.
  std::mutex stamp_mutex_;
  std::deque<double> stamps_;
};

}  // namespace wum

#endif  // WUM_STREAM_THREADED_DRIVER_H_
