// Streaming counterparts of heur1 (session duration), heur2 (page stay)
// and heur3 (navigation-oriented). Each emits a session the moment its
// cut rule fires; Flush emits the open remainder.

#ifndef WUM_STREAM_INCREMENTAL_TIME_SESSIONIZERS_H_
#define WUM_STREAM_INCREMENTAL_TIME_SESSIONIZERS_H_

#include "wum/common/time.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Streaming heur1: cuts when the next request would stretch the session
/// past `max_session_duration`.
class IncrementalDurationSessionizer : public IncrementalUserSessionizer {
 public:
  explicit IncrementalDurationSessionizer(
      TimeSeconds max_session_duration = Minutes(30));

  Status OnRequest(const PageRequest& request, const EmitFn& emit) override;
  Status Flush(const EmitFn& emit) override;
  Status SerializeState(ckpt::Encoder* encoder) const override;
  Status RestoreState(ckpt::Decoder* decoder) override;

 private:
  TimeSeconds max_session_duration_;
  Session current_;
};

/// Streaming heur2: cuts when the gap to the previous request exceeds
/// `max_page_stay`.
class IncrementalPageStaySessionizer : public IncrementalUserSessionizer {
 public:
  explicit IncrementalPageStaySessionizer(
      TimeSeconds max_page_stay = Minutes(10));

  Status OnRequest(const PageRequest& request, const EmitFn& emit) override;
  Status Flush(const EmitFn& emit) override;
  Status SerializeState(ckpt::Encoder* encoder) const override;
  Status RestoreState(ckpt::Decoder* decoder) override;

 private:
  TimeSeconds max_page_stay_;
  Session current_;
};

/// Streaming heur3: appends linked pages, inserts backward movements on
/// path completion, and cuts when the new page has no in-session
/// referrer.
class IncrementalNavigationSessionizer : public IncrementalUserSessionizer {
 public:
  /// `graph` must outlive this object.
  explicit IncrementalNavigationSessionizer(const WebGraph* graph);

  Status OnRequest(const PageRequest& request, const EmitFn& emit) override;
  Status Flush(const EmitFn& emit) override;
  Status SerializeState(ckpt::Encoder* encoder) const override;
  Status RestoreState(ckpt::Decoder* decoder) override;

 private:
  const WebGraph* graph_;
  Session current_;
};

}  // namespace wum

#endif  // WUM_STREAM_INCREMENTAL_TIME_SESSIONIZERS_H_
