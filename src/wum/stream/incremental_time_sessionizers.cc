#include "wum/stream/incremental_time_sessionizers.h"

namespace wum {

IncrementalDurationSessionizer::IncrementalDurationSessionizer(
    TimeSeconds max_session_duration)
    : max_session_duration_(max_session_duration) {}

Status IncrementalDurationSessionizer::OnRequest(const PageRequest& request,
                                                 const EmitFn& emit) {
  if (!current_.empty() &&
      request.timestamp - current_.requests.front().timestamp >
          max_session_duration_) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalDurationSessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

IncrementalPageStaySessionizer::IncrementalPageStaySessionizer(
    TimeSeconds max_page_stay)
    : max_page_stay_(max_page_stay) {}

Status IncrementalPageStaySessionizer::OnRequest(const PageRequest& request,
                                                 const EmitFn& emit) {
  if (!current_.empty() &&
      request.timestamp - current_.requests.back().timestamp >
          max_page_stay_) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalPageStaySessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

IncrementalNavigationSessionizer::IncrementalNavigationSessionizer(
    const WebGraph* graph)
    : graph_(graph) {}

Status IncrementalNavigationSessionizer::OnRequest(const PageRequest& request,
                                                   const EmitFn& emit) {
  if (current_.empty()) {
    current_.requests.push_back(request);
    return Status::OK();
  }
  if (graph_->HasLink(current_.requests.back().page, request.page)) {
    current_.requests.push_back(request);
    return Status::OK();
  }
  std::size_t referrer_index = current_.requests.size();
  for (std::size_t j = current_.requests.size() - 1; j-- > 0;) {
    if (graph_->HasLink(current_.requests[j].page, request.page)) {
      referrer_index = j;
      break;
    }
  }
  if (referrer_index == current_.requests.size()) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
    current_.requests.push_back(request);
    return Status::OK();
  }
  for (std::size_t j = current_.requests.size() - 1; j-- > referrer_index;) {
    current_.requests.push_back(
        PageRequest{current_.requests[j].page, request.timestamp});
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalNavigationSessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

}  // namespace wum
