#include "wum/stream/incremental_time_sessionizers.h"

#include "wum/ckpt/checkpoint.h"

namespace wum {
namespace {

// State type tags, distinct across every IncrementalUserSessionizer
// implementation (smart-sra claims 4 in incremental_sessionizer.cc).
constexpr std::uint8_t kDurationStateTag = 1;
constexpr std::uint8_t kPageStayStateTag = 2;
constexpr std::uint8_t kNavigationStateTag = 3;

Status CheckStateTag(ckpt::Decoder* decoder, std::uint8_t expected,
                     const char* name) {
  WUM_ASSIGN_OR_RETURN(std::uint8_t tag, decoder->GetU8());
  if (tag != expected) {
    return Status::ParseError("state tag " + std::to_string(tag) +
                              " is not " + name + " state");
  }
  return Status::OK();
}

}  // namespace

IncrementalDurationSessionizer::IncrementalDurationSessionizer(
    TimeSeconds max_session_duration)
    : max_session_duration_(max_session_duration) {}

Status IncrementalDurationSessionizer::OnRequest(const PageRequest& request,
                                                 const EmitFn& emit) {
  if (!current_.empty() &&
      request.timestamp - current_.requests.front().timestamp >
          max_session_duration_) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalDurationSessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

Status IncrementalDurationSessionizer::SerializeState(
    ckpt::Encoder* encoder) const {
  encoder->PutU8(kDurationStateTag);
  ckpt::EncodeSession(current_, encoder);
  return Status::OK();
}

Status IncrementalDurationSessionizer::RestoreState(ckpt::Decoder* decoder) {
  WUM_RETURN_NOT_OK(CheckStateTag(decoder, kDurationStateTag, "duration"));
  return ckpt::DecodeSession(decoder, &current_);
}

IncrementalPageStaySessionizer::IncrementalPageStaySessionizer(
    TimeSeconds max_page_stay)
    : max_page_stay_(max_page_stay) {}

Status IncrementalPageStaySessionizer::OnRequest(const PageRequest& request,
                                                 const EmitFn& emit) {
  if (!current_.empty() &&
      request.timestamp - current_.requests.back().timestamp >
          max_page_stay_) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalPageStaySessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

Status IncrementalPageStaySessionizer::SerializeState(
    ckpt::Encoder* encoder) const {
  encoder->PutU8(kPageStayStateTag);
  ckpt::EncodeSession(current_, encoder);
  return Status::OK();
}

Status IncrementalPageStaySessionizer::RestoreState(ckpt::Decoder* decoder) {
  WUM_RETURN_NOT_OK(CheckStateTag(decoder, kPageStayStateTag, "pagestay"));
  return ckpt::DecodeSession(decoder, &current_);
}

IncrementalNavigationSessionizer::IncrementalNavigationSessionizer(
    const WebGraph* graph)
    : graph_(graph) {}

Status IncrementalNavigationSessionizer::OnRequest(const PageRequest& request,
                                                   const EmitFn& emit) {
  if (current_.empty()) {
    current_.requests.push_back(request);
    return Status::OK();
  }
  if (graph_->HasLink(current_.requests.back().page, request.page)) {
    current_.requests.push_back(request);
    return Status::OK();
  }
  std::size_t referrer_index = current_.requests.size();
  for (std::size_t j = current_.requests.size() - 1; j-- > 0;) {
    if (graph_->HasLink(current_.requests[j].page, request.page)) {
      referrer_index = j;
      break;
    }
  }
  if (referrer_index == current_.requests.size()) {
    WUM_RETURN_NOT_OK(emit(std::move(current_)));
    current_ = Session{};
    current_.requests.push_back(request);
    return Status::OK();
  }
  for (std::size_t j = current_.requests.size() - 1; j-- > referrer_index;) {
    current_.requests.push_back(
        PageRequest{current_.requests[j].page, request.timestamp});
  }
  current_.requests.push_back(request);
  return Status::OK();
}

Status IncrementalNavigationSessionizer::Flush(const EmitFn& emit) {
  if (current_.empty()) return Status::OK();
  Status status = emit(std::move(current_));
  current_ = Session{};
  return status;
}

Status IncrementalNavigationSessionizer::SerializeState(
    ckpt::Encoder* encoder) const {
  encoder->PutU8(kNavigationStateTag);
  ckpt::EncodeSession(current_, encoder);
  return Status::OK();
}

Status IncrementalNavigationSessionizer::RestoreState(ckpt::Decoder* decoder) {
  WUM_RETURN_NOT_OK(CheckStateTag(decoder, kNavigationStateTag, "navigation"));
  return ckpt::DecodeSession(decoder, &current_);
}

}  // namespace wum
