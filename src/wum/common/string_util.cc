#include "wum/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace wum {

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view input) {
  std::size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  std::size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

Result<std::int64_t> ParseInt64(std::string_view text) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::ParseError("not an int64: '" + std::string(text) + "'");
  }
  return value;
}

Result<std::uint64_t> ParseUint64(std::string_view text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::ParseError("not a uint64: '" + std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty double");
  // std::from_chars for double is unreliable across standard libraries;
  // strtod on a NUL-terminated copy is portable.
  std::string copy(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (errno == ERANGE || end != copy.c_str() + copy.size()) {
    return Status::ParseError("not a double: '" + copy + "'");
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

}  // namespace wum
