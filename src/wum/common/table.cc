#include "wum/common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace wum {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

void Table::Render(std::ostream* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    *out << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      *out << ' ' << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) {
        *out << ' ';
      }
      *out << " |";
    }
    *out << '\n';
  };
  emit_row(header_);
  *out << '|';
  for (std::size_t i = 0; i < header_.size(); ++i) {
    *out << ' ';
    for (std::size_t pad = 0; pad < widths[i]; ++pad) *out << '-';
    *out << " |";
  }
  *out << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::ToString() const {
  std::ostringstream oss;
  Render(&oss);
  return oss.str();
}

}  // namespace wum
