// Deterministic random number generation. All randomness in the library
// flows from an explicit 64-bit seed through this wrapper, so identical
// seeds reproduce identical topologies, sessions and logs.

#ifndef WUM_COMMON_RANDOM_H_
#define WUM_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace wum {

/// SplitMix64 step; used to derive well-distributed child seeds from a
/// master seed (so agent i's stream is independent of agent j's).
std::uint64_t SplitMix64(std::uint64_t* state);

/// Deterministic PRNG facade over std::mt19937_64.
///
/// The engine is seeded through SplitMix64 to avoid the classic
/// low-entropy-seed pathologies of Mersenne Twister.
class Rng {
 public:
  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(std::uint64_t seed);

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) noexcept = default;
  Rng& operator=(Rng&&) noexcept = default;

  /// Derives an independent child generator; successive calls yield
  /// different children.
  Rng Fork();

  /// Uniform double in [0, 1).
  double NextUnit();

  /// Returns true with probability `p` (p <= 0 -> never, p >= 1 -> always).
  bool Bernoulli(double p);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean / standard deviation.
  double NextNormal(double mean, double stddev);

  /// Normal draw truncated (by resampling) to be strictly greater than
  /// `lower_bound`. Falls back to `lower_bound + epsilon` after 64 failed
  /// attempts (possible only for pathological parameters).
  double NextTruncatedNormal(double mean, double stddev, double lower_bound);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights[i]`. All weights must be >= 0 with a positive sum.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in increasing order.
  /// Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t fork_state_;
};

}  // namespace wum

#endif  // WUM_COMMON_RANDOM_H_
