#include "wum/common/csv.h"

#include <cstdio>

namespace wum {

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << EscapeField(fields[i]);
  }
  *out_ << '\n';
  ++rows_written_;
}

void CsvWriter::WriteRow(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  char buffer[64];
  for (double v : values) {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    fields.emplace_back(buffer);
  }
  WriteRow(fields);
}

}  // namespace wum
