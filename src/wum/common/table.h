// Markdown/ASCII table rendering for benchmark and experiment output.

#ifndef WUM_COMMON_TABLE_H_
#define WUM_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace wum {

/// Accumulates rows of string cells and renders them as an aligned
/// GitHub-flavored-Markdown table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Numeric convenience: label in the first column, fixed-precision
  /// values after it.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) with padded columns.
  void Render(std::ostream* out) const;

  /// Renders to a string (convenience for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double value, int precision);

}  // namespace wum

#endif  // WUM_COMMON_TABLE_H_
