// Result<T>: value-or-Status, the library's return type for fallible
// operations that produce a value.

#ifndef WUM_COMMON_RESULT_H_
#define WUM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "wum/common/status.h"

namespace wum {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Usage:
///   Result<WebGraph> r = LoadGraph(path);
///   if (!r.ok()) return r.status();
///   WebGraph g = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; undefined if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when in the error state.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace wum

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status: `WUM_ASSIGN_OR_RETURN(auto g, LoadGraph(path));`.
#define WUM_ASSIGN_OR_RETURN(lhs, rexpr)                \
  WUM_ASSIGN_OR_RETURN_IMPL_(                           \
      WUM_RESULT_CONCAT_(_wum_result_, __LINE__), lhs, rexpr)

#define WUM_RESULT_CONCAT_INNER_(a, b) a##b
#define WUM_RESULT_CONCAT_(a, b) WUM_RESULT_CONCAT_INNER_(a, b)
#define WUM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#endif  // WUM_COMMON_RESULT_H_
