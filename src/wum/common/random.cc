#include "wum/common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace wum {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  // Seed the full Mersenne state from SplitMix64 per the xoshiro authors'
  // recommendation for seeding big-state generators.
  std::seed_seq seq{SplitMix64(&state), SplitMix64(&state), SplitMix64(&state),
                    SplitMix64(&state)};
  engine_.seed(seq);
  fork_state_ = SplitMix64(&state);
}

Rng Rng::Fork() { return Rng(SplitMix64(&fork_state_)); }

double Rng::NextUnit() {
  // 53-bit mantissa construction; uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextUnit() < p;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t value;
  do {
    value = engine_();
  } while (value >= limit);
  return value % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine_());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextNormal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::NextTruncatedNormal(double mean, double stddev,
                                double lower_bound) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    double value = NextNormal(mean, stddev);
    if (value > lower_bound) return value;
  }
  return lower_bound + 1e-9;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextUnit() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  // Floating point slack: return the last index with positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected, produces a set; sort for determinism.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(NextBounded(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace wum
