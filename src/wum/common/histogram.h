// Streaming summary statistics and a fixed-width-bucket histogram, used to
// characterize session-length and duration distributions.

#ifndef WUM_COMMON_HISTOGRAM_H_
#define WUM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wum {

/// Accumulates count / mean / min / max / variance (Welford) of a stream.
class RunningStats {
 public:
  void Add(double value);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bucket histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow buckets.
class Histogram {
 public:
  /// Requires lo < hi and bucket_count >= 1.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void Add(double value);

  std::uint64_t total_count() const { return stats_.count(); }
  const RunningStats& stats() const { return stats_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Value `v` such that ~q of the mass is below it (linear interpolation
  /// within buckets). q in [0, 1].
  double Quantile(double q) const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToAscii(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  RunningStats stats_;
};

}  // namespace wum

#endif  // WUM_COMMON_HISTOGRAM_H_
