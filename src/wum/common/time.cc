#include "wum/common/time.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "wum/common/string_util.h"

namespace wum {
namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(std::int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const std::int64_t yr = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                   // [1, 31]
  const unsigned month = mp + (mp < 10 ? 3 : -9);                      // [1, 12]
  *y = static_cast<int>(yr + (month <= 2));
  *m = static_cast<int>(month);
  *d = static_cast<int>(day);
}

int MonthFromName(std::string_view name) {
  for (std::size_t i = 0; i < kMonthNames.size(); ++i) {
    if (name == kMonthNames[i]) return static_cast<int>(i) + 1;
  }
  return 0;
}

}  // namespace

TimeSeconds MinutesF(double minutes) {
  return static_cast<TimeSeconds>(std::llround(minutes * 60.0));
}

bool IsValidCivilTime(const CivilTime& ct) {
  if (ct.month < 1 || ct.month > 12) return false;
  if (ct.day < 1 || ct.day > DaysInMonth(ct.year, ct.month)) return false;
  if (ct.hour < 0 || ct.hour > 23) return false;
  if (ct.minute < 0 || ct.minute > 59) return false;
  if (ct.second < 0 || ct.second > 59) return false;
  return true;
}

CivilTime CivilTimeFromUnixSeconds(TimeSeconds seconds) {
  std::int64_t days = seconds / 86400;
  std::int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  return ct;
}

Result<TimeSeconds> UnixSecondsFromCivilTime(const CivilTime& ct) {
  if (!IsValidCivilTime(ct)) {
    return Status::InvalidArgument("invalid civil time");
  }
  return DaysFromCivil(ct.year, ct.month, ct.day) * 86400 + ct.hour * 3600 +
         ct.minute * 60 + ct.second;
}

std::string FormatClfTimestamp(TimeSeconds unix_seconds) {
  CivilTime ct = CivilTimeFromUnixSeconds(unix_seconds);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%02d/%s/%04d:%02d:%02d:%02d +0000",
                ct.day, kMonthNames[static_cast<std::size_t>(ct.month - 1)],
                ct.year, ct.hour, ct.minute, ct.second);
  return buffer;
}

Result<TimeSeconds> ParseClfTimestamp(std::string_view text) {
  // Layout: DD/Mon/YYYY:HH:MM:SS [+-]HHMM
  if (text.size() < 26) {
    return Status::ParseError("CLF timestamp too short: '" +
                              std::string(text) + "'");
  }
  auto digits = [&](std::size_t pos, std::size_t len, int* out) -> bool {
    int value = 0;
    for (std::size_t i = pos; i < pos + len; ++i) {
      if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
      value = value * 10 + (text[i] - '0');
    }
    *out = value;
    return true;
  };
  CivilTime ct;
  if (!digits(0, 2, &ct.day) || text[2] != '/') {
    return Status::ParseError("bad CLF day field");
  }
  ct.month = MonthFromName(text.substr(3, 3));
  if (ct.month == 0 || text[6] != '/') {
    return Status::ParseError("bad CLF month field");
  }
  if (!digits(7, 4, &ct.year) || text[11] != ':') {
    return Status::ParseError("bad CLF year field");
  }
  if (!digits(12, 2, &ct.hour) || text[14] != ':' || !digits(15, 2, &ct.minute) ||
      text[17] != ':' || !digits(18, 2, &ct.second) || text[20] != ' ') {
    return Status::ParseError("bad CLF time-of-day field");
  }
  const char sign = text[21];
  if (sign != '+' && sign != '-') {
    return Status::ParseError("bad CLF zone sign");
  }
  int zone_hours = 0;
  int zone_minutes = 0;
  if (!digits(22, 2, &zone_hours) || !digits(24, 2, &zone_minutes)) {
    return Status::ParseError("bad CLF zone offset");
  }
  if (!IsValidCivilTime(ct)) {
    return Status::ParseError("CLF timestamp has impossible date fields: '" +
                              std::string(text) + "'");
  }
  WUM_ASSIGN_OR_RETURN(TimeSeconds local, UnixSecondsFromCivilTime(ct));
  TimeSeconds offset = zone_hours * 3600 + zone_minutes * 60;
  if (sign == '-') offset = -offset;
  return local - offset;  // local = utc + offset
}

}  // namespace wum
