// Minimal CSV emission for experiment results.

#ifndef WUM_COMMON_CSV_H_
#define WUM_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace wum {

/// Writes rows of fields as RFC-4180-style CSV (quotes fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  /// The writer does not own `out`; it must outlive the writer.
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; fields are escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience for numeric rows: first field label, rest values.
  void WriteRow(const std::string& label, const std::vector<double>& values,
                int precision = 4);

  int rows_written() const { return rows_written_; }

  /// Escapes a single field per RFC 4180.
  static std::string EscapeField(const std::string& field);

 private:
  std::ostream* out_;
  int rows_written_ = 0;
};

}  // namespace wum

#endif  // WUM_COMMON_CSV_H_
