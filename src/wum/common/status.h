// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. Library code returns Status (or Result<T>, see result.h)
// instead of throwing.

#ifndef WUM_COMMON_STATUS_H_
#define WUM_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace wum {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kAlreadyExists = 5,
  kIoError = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kConnectionReset = 11,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK, or a code plus a message.
///
/// The OK state carries no allocation; error states allocate a small
/// representation. Status is cheap to move and to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ConnectionReset(std::string message) {
    return Status(StatusCode::kConnectionReset, std::move(message));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : rep_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsConnectionReset() const {
    return code() == StatusCode::kConnectionReset;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

}  // namespace wum

/// Propagates a non-OK Status to the caller: `WUM_RETURN_NOT_OK(DoThing());`.
#define WUM_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::wum::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // WUM_COMMON_STATUS_H_
