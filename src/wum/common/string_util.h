// Small string helpers used across the library.

#ifndef WUM_COMMON_STRING_UTIL_H_
#define WUM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wum/common/result.h"

namespace wum {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

/// True iff `text` begins with `prefix` / ends with `suffix`. Inline:
/// both sit on the per-record hot path (URL-to-page mapping).
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}
inline bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// ASCII lower-casing (locale independent).
std::string AsciiToLower(std::string_view text);

/// Parses a base-10 signed/unsigned integer occupying the whole string.
Result<std::int64_t> ParseInt64(std::string_view text);
Result<std::uint64_t> ParseUint64(std::string_view text);

/// Parses a floating point number occupying the whole string.
Result<double> ParseDouble(std::string_view text);

/// Joins `parts` with `separator`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

}  // namespace wum

#endif  // WUM_COMMON_STRING_UTIL_H_
