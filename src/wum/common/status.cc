#include "wum/common/status.h"

namespace wum {
namespace {

const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}

}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kConnectionReset:
      return "ConnectionReset";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ == nullptr ? EmptyString() : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

}  // namespace wum
