// Time types shared across the library. The simulation measures time in
// whole seconds since an arbitrary epoch; the CLF layer converts to and
// from calendar timestamps.

#ifndef WUM_COMMON_TIME_H_
#define WUM_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "wum/common/result.h"

namespace wum {

/// Seconds since the simulation epoch (or UNIX epoch at the CLF boundary).
using TimeSeconds = std::int64_t;

/// Converts whole minutes to TimeSeconds.
constexpr TimeSeconds Minutes(std::int64_t minutes) { return minutes * 60; }

/// Converts fractional minutes to TimeSeconds (rounds to nearest second).
TimeSeconds MinutesF(double minutes);

/// Time thresholds used by the session heuristics (paper defaults:
/// delta = 30 min total session duration, rho = 10 min page stay).
struct TimeThresholds {
  TimeSeconds max_session_duration = Minutes(30);
  TimeSeconds max_page_stay = Minutes(10);
};

/// Broken-down UTC calendar time, sufficient for CLF timestamps.
struct CivilTime {
  int year = 1970;
  int month = 1;   // 1..12
  int day = 1;     // 1..31
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// True iff the fields form a valid calendar date-time (proleptic
/// Gregorian, leap years included).
bool IsValidCivilTime(const CivilTime& ct);

/// Converts a UNIX timestamp (UTC) to broken-down form.
CivilTime CivilTimeFromUnixSeconds(TimeSeconds seconds);

/// Converts broken-down UTC time to a UNIX timestamp.
/// Returns InvalidArgument for out-of-range fields.
Result<TimeSeconds> UnixSecondsFromCivilTime(const CivilTime& ct);

/// Formats a CLF timestamp: "[02/Jan/2006:15:04:05 +0000]" without the
/// brackets (the writer adds them).
std::string FormatClfTimestamp(TimeSeconds unix_seconds);

/// Parses the bracket-free CLF timestamp produced by FormatClfTimestamp.
/// Accepts any numeric "+HHMM"/"-HHMM" zone and normalizes to UTC.
Result<TimeSeconds> ParseClfTimestamp(std::string_view text);

}  // namespace wum

#endif  // WUM_COMMON_TIME_H_
