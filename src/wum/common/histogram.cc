#include "wum/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wum {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bucket_count)),
      buckets_(bucket_count, 0) {
  assert(lo < hi);
  assert(bucket_count >= 1);
}

void Histogram::Add(double value) {
  stats_.Add(value);
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((value - lo_) / width_);
  if (index >= buckets_.size()) index = buckets_.size() - 1;  // fp edge
  ++buckets_[index];
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = total_count();
  if (total == 0) return lo_;
  const double target = q * static_cast<double>(total);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      return lo_ + (static_cast<double>(i) + fraction) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(std::size_t max_bar_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t b : buckets_) peak = std::max(peak, b);
  std::ostringstream oss;
  char label[64];
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double bucket_lo = lo_ + static_cast<double>(i) * width_;
    std::snprintf(label, sizeof(label), "[%8.2f, %8.2f) %8llu ", bucket_lo,
                  bucket_lo + width_,
                  static_cast<unsigned long long>(buckets_[i]));
    oss << label;
    const std::size_t bar = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    for (std::size_t j = 0; j < bar; ++j) oss << '#';
    oss << '\n';
  }
  if (underflow_ > 0) oss << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) oss << "overflow:  " << overflow_ << '\n';
  return oss.str();
}

}  // namespace wum
