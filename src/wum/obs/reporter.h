// wum::obs reporting — a background thread that appends periodic
// MetricRegistry snapshots to a JSONL file, so a long or crashed run
// leaves a time series instead of nothing. Each line is flushed as it
// is written: whatever survives a SIGKILL is every completed interval.
//
// Line shape (one JSON object per line):
//
//   {"seq": 3, "uptime_ms": 3000, "metrics": {"counters": {...},
//    "gauges": {...}, "histograms": {...}}}
//
// The embedded "metrics" object is MetricsSnapshot::ToJsonLine() — the
// same schema as the end-of-run metrics file, compacted to one line.

#ifndef WUM_OBS_REPORTER_H_
#define WUM_OBS_REPORTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "wum/common/result.h"
#include "wum/obs/metrics.h"

namespace wum {
namespace obs {

/// Background snapshot writer. Start() spawns the thread; Stop() (or
/// destruction) writes one final snapshot and joins, so even a run
/// shorter than one interval leaves at least one line.
class MetricsReporter {
 public:
  struct Options {
    /// Snapshot cadence. Must be positive.
    std::chrono::milliseconds interval{1000};
    /// JSONL output path; created or truncated at Start.
    std::string path;
    /// Registry counter mirror `obs.reporter.snapshots` is registered
    /// in the observed registry itself, so the series self-documents
    /// its own cadence.
  };

  /// Spawns the reporter thread. `registry` must outlive the reporter.
  /// InvalidArgument on a non-positive interval or empty path, IoError
  /// when the file cannot be opened.
  static Result<std::unique_ptr<MetricsReporter>> Start(
      MetricRegistry* registry, Options options);

  /// Stops and joins (idempotent).
  ~MetricsReporter();

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  /// Wakes the thread, writes the final snapshot line, joins. Safe to
  /// call more than once; returns the sticky first write error.
  Status Stop();

  /// Snapshot lines successfully written so far.
  std::uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

 private:
  MetricsReporter(MetricRegistry* registry, Options options);

  void Run();
  /// Appends one snapshot line; records the first failure as sticky.
  void WriteSnapshotLine();

  MetricRegistry* const registry_;
  const Options options_;
  const std::chrono::steady_clock::time_point started_;
  Counter snapshots_mirror_;
  std::ofstream out_;
  std::uint64_t seq_ = 0;          // reporter thread (and final Stop) only
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::mutex mutex_;               // guards stop_ + out_/error_ handoff
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool joined_ = false;
  Status error_;                   // sticky first write failure
  std::thread thread_;
};

}  // namespace obs
}  // namespace wum

#endif  // WUM_OBS_REPORTER_H_
