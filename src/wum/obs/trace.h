// wum::obs tracing — per-thread ring-buffer span recording with Chrome
// trace-event JSON export, answering the questions a metrics snapshot
// cannot: *where* one record stalled, *which* shard caused a drain
// spike, *what order* the pipeline stages actually ran in.
//
// Design, mirroring wum/obs/metrics.h:
//   * `Tracer` is a trivially copyable pointer-sized handle. A
//     default-constructed handle is *disabled*: every span is a no-op
//     behind a single predictable branch and `ScopedSpan` never reads
//     the clock, so instrumented code costs ~nothing when no recorder
//     is attached.
//   * The hot path is lock-free: each recording thread owns a private
//     ring buffer of atomic slots; a push is a handful of relaxed
//     stores plus one release publish, with no CAS and no contention.
//     The recorder mutex guards only thread registration and export.
//   * Memory is bounded: the ring overwrites its oldest events
//     (drop-oldest), and the number of overwritten events is tracked —
//     and mirrored into the `obs.trace.dropped_events` counter when a
//     MetricRegistry is attached — so a truncated trace is detectable,
//     never silent.
//   * Span names must be string literals (or otherwise outlive the
//     recorder): slots store the pointer, not a copy.
//
// Export is the Chrome trace-event JSON format: load the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Every event
// carries `shard` and `seq` args identifying which shard processed the
// record and the stage-specific sequence number (see
// docs/observability.md for the stage → seq mapping).

#ifndef WUM_OBS_TRACE_H_
#define WUM_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/obs/metrics.h"

namespace wum {
namespace obs {

class Tracer;

/// One exported trace event (a completed span, or an instant event when
/// `dur_us == 0` and `instant` is set).
struct TraceEvent {
  const char* name = "";
  /// 1-based index of the recording thread, in registration order.
  std::uint64_t tid = 0;
  /// Start time in microseconds since the recorder's construction.
  double ts_us = 0.0;
  double dur_us = 0.0;
  bool instant = false;
  /// Shard that handled the record (0 for engine-global stages).
  std::uint64_t shard = 0;
  /// Stage-specific sequence number (record offset, session count,
  /// attempt number, checkpoint epoch — per-stage meaning documented in
  /// docs/observability.md).
  std::uint64_t seq = 0;
};

/// Owns the per-thread ring buffers. Create one per run, hand
/// `Tracer(&recorder)` handles to instrumented components, export after
/// the run with `WriteChromeTrace`. Thread-safe; handles must not
/// outlive the recorder (same lifetime rule as MetricRegistry cells).
class TraceRecorder {
 public:
  struct Options {
    /// Ring capacity per recording thread, in events. Oldest events
    /// are overwritten beyond this (drop-oldest policy).
    std::size_t events_per_thread = 1u << 16;
    /// Optional registry for the `obs.trace.*` mirrors (recorded /
    /// dropped event counts, registered thread count).
    MetricRegistry* metrics = nullptr;
  };

  TraceRecorder() : TraceRecorder(Options{}) {}
  explicit TraceRecorder(Options options);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Events currently retained, oldest-dropped excluded, sorted by
  /// start time. Consistent when recording threads are quiescent (the
  /// normal case: export runs after Finish); concurrent writers can at
  /// worst tear the handful of events written during the copy.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete/instant
  /// events plus thread-name metadata), loadable in Perfetto.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Total events ever recorded (including since-overwritten ones).
  std::uint64_t events_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Events lost to the drop-oldest policy.
  std::uint64_t events_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Distinct threads that have recorded at least one event.
  std::size_t threads_registered() const;

 private:
  friend class Tracer;

  struct ThreadBuffer;

  /// The calling thread's buffer, registering it on first use. A
  /// thread-local cache makes repeat calls mutex-free.
  ThreadBuffer* BufferForThisThread();

  void Push(const char* name, double ts_us, double dur_us, bool instant,
            std::uint64_t shard, std::uint64_t seq);

  const std::size_t capacity_;
  const std::uint64_t id_;     // distinguishes recorders in thread caches
  const double epoch_us_;      // NowMicros() at construction; ts origin
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Counter recorded_mirror_;
  Counter dropped_mirror_;
  Gauge threads_mirror_;
  mutable std::mutex mutex_;   // guards buffers_ (registration + export)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Nullable handle through which components record spans. Disabled
/// (every call a no-op, clock untouched) when default-made or built
/// from nullptr — the trace analogue of a disabled Counter.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceRecorder* recorder) : recorder_(recorder) {}

  bool enabled() const { return recorder_ != nullptr; }

  /// Records a completed span. `start_us` is absolute (internal::
  /// NowMicros timebase); the recorder rebases it onto its epoch.
  void RecordComplete(const char* name, double start_us, double dur_us,
                      std::uint64_t shard, std::uint64_t seq) {
    if (recorder_ == nullptr) return;
    recorder_->Push(name, start_us, dur_us, /*instant=*/false, shard, seq);
  }

  /// Records a zero-duration instant event stamped "now". Reads the
  /// clock only when enabled.
  void Instant(const char* name, std::uint64_t shard, std::uint64_t seq) {
    if (recorder_ == nullptr) return;
    recorder_->Push(name, internal::NowMicros(), 0.0, /*instant=*/true,
                    shard, seq);
  }

 private:
  TraceRecorder* recorder_ = nullptr;
};

/// Null-safe handle maker, mirroring CounterIn: nullptr yields a
/// disabled tracer (the "tracing off" mode).
inline Tracer TracerIn(TraceRecorder* recorder) { return Tracer(recorder); }

/// RAII span: starts timing at construction, records on destruction.
/// When the tracer is disabled the clock is never read. `name` must be
/// a string literal (or outlive the recorder).
class ScopedSpan {
 public:
  ScopedSpan(Tracer tracer, const char* name, std::uint64_t shard = 0,
             std::uint64_t seq = 0)
      : tracer_(tracer), name_(name), shard_(shard), seq_(seq) {
    if (tracer_.enabled()) start_us_ = internal::NowMicros();
  }

  ~ScopedSpan() {
    if (!tracer_.enabled()) return;
    tracer_.RecordComplete(name_, start_us_,
                           internal::NowMicros() - start_us_, shard_, seq_);
  }

  /// Refine the span's identity after construction (e.g. once the
  /// target shard is known mid-scope).
  void set_shard(std::uint64_t shard) { shard_ = shard; }
  void set_seq(std::uint64_t seq) { seq_ = seq; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer tracer_;
  const char* name_;
  std::uint64_t shard_;
  std::uint64_t seq_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace wum

#endif  // WUM_OBS_TRACE_H_
