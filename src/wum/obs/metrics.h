// wum::obs — the observability layer: a MetricRegistry handing out named
// Counter / Gauge / Histogram handles, plus a ScopedTimer profiling hook.
//
// Design constraints (see docs/observability.md):
//   * Hot-path writes are lock-free relaxed atomics; the registry mutex
//     guards only metric *creation* and snapshotting.
//   * Handles are trivially copyable pointer-sized values. A
//     default-constructed handle is *disabled*: every write is a no-op
//     behind a single predictable branch and ScopedTimer never touches
//     the clock, so instrumented code costs ~nothing when no registry is
//     attached (the "null registry" mode).
//   * Cells live as long as the registry; handles must not outlive it.
//   * Snapshot() is consistent enough for throughput accounting (each
//     cell is read atomically; cross-cell skew is possible while writers
//     run) and deterministic: entries are sorted by name.

#ifndef WUM_OBS_METRICS_H_
#define WUM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "wum/common/result.h"

namespace wum {
namespace obs {

class MetricRegistry;

namespace internal {

/// Clock source used by every obs timing primitive (ScopedTimer,
/// ScopedSpan, Tracer::Instant). Returns monotonic microseconds.
using ClockMicrosFn = double (*)();

/// Monotonic "now" in microseconds. Reads the test override when one is
/// installed, std::chrono::steady_clock otherwise. Timing primitives
/// call this *only* while enabled, which is what makes "disabled
/// handles never read the clock" a testable property.
double NowMicros();

/// Installs `fn` as the clock (nullptr restores steady_clock). Tests
/// only; not meant for concurrent installation while timers run.
void SetClockForTesting(ClockMicrosFn fn);

/// Wall-clock source for event-time comparisons (watermark lag). Unlike
/// NowMicros this is *epoch* time — comparable against CLF timestamps.
using EpochSecondsFn = std::uint64_t (*)();

/// UNIX seconds from std::chrono::system_clock, or the test override.
std::uint64_t NowEpochSeconds();

/// Installs `fn` as the wall clock (nullptr restores system_clock).
/// Tests only.
void SetEpochClockForTesting(EpochSecondsFn fn);

/// JSON string escaping shared by the metrics and trace exporters.
std::string EscapeJson(const std::string& text);

/// Shortest round-trip rendering of a finite double ("0" when not
/// finite — JSON has no Infinity literal).
std::string RenderDouble(double value);

}  // namespace internal

/// Monotonically increasing event count. Disabled when default-made.
class Counter {
 public:
  Counter() = default;

  void Increment(std::uint64_t delta = 1) {
    if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Last-written (or max-tracked) value, e.g. a queue-depth high
/// watermark. Disabled when default-made.
class Gauge {
 public:
  Gauge() = default;

  void Set(std::uint64_t value) {
    if (cell_ != nullptr) cell_->store(value, std::memory_order_relaxed);
  }

  /// Raises the gauge to `value` if larger (atomic running max).
  void MaxOf(std::uint64_t value) {
    if (cell_ == nullptr) return;
    std::uint64_t seen = cell_->load(std::memory_order_relaxed);
    while (seen < value && !cell_->compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  std::atomic<std::uint64_t>* cell_ = nullptr;
};

namespace internal {

/// Backing storage of one histogram: fixed upper-bound buckets plus
/// running count / sum / min / max, all individually atomic.
struct HistogramCell {
  explicit HistogramCell(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Inclusive upper bounds, strictly increasing; the implicit last
  /// bucket is (+inf).
  const std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  // Doubles updated with CAS loops (no atomic<double>::fetch_add needed).
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
};

}  // namespace internal

/// Fixed-bucket value distribution (latencies, sizes). Disabled when
/// default-made.
class Histogram {
 public:
  Histogram() = default;

  void Observe(double value) {
    if (cell_ != nullptr) cell_->Observe(value);
  }

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit Histogram(internal::HistogramCell* cell) : cell_(cell) {}

  internal::HistogramCell* cell_ = nullptr;
};

/// Default latency bucket upper bounds in microseconds: 1us .. ~10s in
/// roughly 1-2-5 steps, suiting both per-record drains and per-user
/// reconstructions.
const std::vector<double>& DefaultLatencyBucketsUs();

/// Point-in-time copy of every registered metric, sorted by name within
/// each kind. Safe to keep after the registry is gone.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    /// bounds.size() + 1 counts; the last is the overflow bucket.
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Estimated quantile (0 < q < 1), linearly interpolated inside the
    /// fixed bucket containing rank q·count. The first occupied
    /// bucket's lower edge is tightened to `min` and the overflow
    /// bucket's upper edge to `max` (both are tracked exactly), and the
    /// result is clamped to [min, max]. Resolution is bounded by the
    /// bucket width around the quantile; 0 when the histogram is empty.
    double Quantile(double q) const;

    double p50() const { return Quantile(0.50); }
    double p90() const { return Quantile(0.90); }
    double p99() const { return Quantile(0.99); }
  };

  /// Constant identity metric: an ordered label set rendered as a
  /// value-1 gauge by the Prometheus exporter (`wum_build_info{...} 1`)
  /// and as a string map in JSON. Set via MetricRegistry::SetInfo.
  struct InfoValue {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<InfoValue> infos;

  /// Lookup helpers; return nullptr when the name is absent.
  const CounterValue* FindCounter(const std::string& name) const;
  const GaugeValue* FindGauge(const std::string& name) const;
  const HistogramValue* FindHistogram(const std::string& name) const;

  /// Counter value, 0 when absent (convenient for totals).
  std::uint64_t CounterOrZero(const std::string& name) const;

  /// Sums every counter whose name starts with `prefix` (per-shard
  /// rollups: CounterSumByPrefix("engine.shard") etc.).
  std::uint64_t CounterSumByPrefix(const std::string& prefix) const;

  /// Machine-readable renderings; all are deterministic for a given
  /// snapshot (schema in docs/observability.md).
  std::string ToJson() const;
  std::string ToCsv() const;

  /// ToJson's content on a single line (no trailing newline) — the
  /// JSONL record shape appended by MetricsReporter.
  std::string ToJsonLine() const;
};

/// Writes a snapshot to `path`: CSV when the path ends in ".csv", JSON
/// otherwise.
Status WriteMetricsFile(const MetricsSnapshot& snapshot,
                        const std::string& path);

/// Owns every metric cell. Get* registers on first use and returns the
/// existing cell on repeat calls, so independent components may share a
/// metric by name. Thread-safe; cells have stable addresses for the
/// registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  /// `upper_bounds` must be strictly increasing and non-empty; it is
  /// ignored (the existing bounds win) when `name` already exists.
  Histogram GetHistogram(
      const std::string& name,
      const std::vector<double>& upper_bounds = DefaultLatencyBucketsUs());

  /// Registers (or replaces) the constant info metric `name` with an
  /// ordered label set — process identity facts like version and config
  /// fingerprint that never change after startup.
  void SetInfo(const std::string& name,
               std::vector<std::pair<std::string, std::string>> labels);

  /// Registers a callback run at the top of every Snapshot(), before
  /// the cells are read — the hook for scrape-time gauges (queue
  /// depths, uptime, watermark skew) that are cheaper to compute on
  /// demand than to maintain on the hot path. Probes must only write
  /// through handles acquired *before* registration: calling Get* or
  /// Snapshot from inside a probe deadlocks on the registry mutex.
  /// Returns an id for RemoveProbe.
  std::size_t AddProbe(std::function<void()> probe);

  /// Unregisters a probe. Components whose probes capture raw pointers
  /// into themselves (the engine does) must remove them before dying —
  /// the registry usually outlives its clients. Unknown ids are a no-op.
  void RemoveProbe(std::size_t id);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<internal::HistogramCell>> histograms_;
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      infos_;
  // Guarded separately from mutex_ so a running probe (which holds no
  // lock) can never deadlock a concurrent Get*.
  mutable std::mutex probe_mutex_;
  std::size_t next_probe_id_ = 1;
  std::vector<std::pair<std::size_t, std::function<void()>>> probes_;
};

/// Null-safe registration helpers: a nullptr registry yields a disabled
/// handle, which is the whole "metrics off" mode.
Counter CounterIn(MetricRegistry* registry, const std::string& name);
Gauge GaugeIn(MetricRegistry* registry, const std::string& name);
Histogram HistogramIn(
    MetricRegistry* registry, const std::string& name,
    const std::vector<double>& upper_bounds = DefaultLatencyBucketsUs());

/// RAII profiling hook: records the scope's wall time in microseconds
/// into a Histogram on destruction. When the histogram is disabled the
/// clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram) : histogram_(histogram) {
    if (histogram_.enabled()) start_us_ = internal::NowMicros();
  }

  ~ScopedTimer() {
    if (!histogram_.enabled()) return;
    histogram_.Observe(internal::NowMicros() - start_us_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace wum

#endif  // WUM_OBS_METRICS_H_
