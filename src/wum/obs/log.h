// wum::obs logging — leveled, thread-safe, structured `key=value`
// lines, rate-limited per call site.
//
// Library code logs through the process-wide `Logger::Default()`, which
// starts at kWarn: healthy runs stay quiet (every library call site is
// on a failure or lifecycle path, never per-record on the happy path),
// and CLI tools raise or lower verbosity with --log-level. The level
// check is a single relaxed atomic load, so a suppressed line costs one
// branch and builds nothing.
//
// Line shape (one line per event, '\n'-terminated, stderr by default):
//
//   ts=1723033200.123456 level=warn site=clf.reject line=7 error="..."
//
// * `site` names the call site (stable identifier, e.g. "ckpt.commit").
// * Values that contain spaces, quotes, '=' or control characters are
//   double-quoted with backslash escapes; bare values stay bare. A
//   consumer can split on spaces outside quotes and then on the first
//   '='.
// * Rate limiting is per site per second: beyond `rate_limit_per_sec`
//   lines from one site in one second, lines are dropped and counted;
//   the first line of a later second carries `suppressed=<n>` so the
//   drop is visible in the stream itself.

#ifndef WUM_OBS_LOG_H_
#define WUM_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "wum/common/result.h"

namespace wum {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error" / "off".
std::string_view LogLevelName(LogLevel level);

/// Parses the names above (for --log-level); InvalidArgument otherwise.
Result<LogLevel> ParseLogLevel(const std::string& text);

/// Thread-safe structured logger. Use `Logger::Default()` unless a test
/// needs an isolated instance.
class Logger {
 public:
  Logger() = default;

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The process-wide logger every library call site writes to.
  static Logger& Default();

  /// Minimum level that gets written; kWarn initially, kOff silences.
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  /// Redirects output (default: std::cerr). `out` must outlive the
  /// logger or be reset before it dies; nullptr restores stderr.
  void set_stream(std::ostream* out);

  /// Lines per site per second before suppression kicks in (default
  /// 16; 0 disables rate limiting).
  void set_rate_limit_per_sec(std::uint64_t limit) {
    rate_limit_per_sec_.store(limit, std::memory_order_relaxed);
  }

  /// Wall-clock `ts=` prefix on every line (default on; tests turn it
  /// off for byte-stable output).
  void set_include_timestamp(bool include) {
    include_timestamp_.store(include, std::memory_order_relaxed);
  }

  std::uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t lines_suppressed() const {
    return lines_suppressed_.load(std::memory_order_relaxed);
  }

  /// Emits one finished line (LogLine calls this; prefer LogLine).
  /// `fields` is the pre-rendered " key=value..." suffix.
  void Write(LogLevel level, const char* site, const std::string& fields);

 private:
  struct SiteState {
    std::uint64_t window_sec = 0;   // monotonic second this window covers
    std::uint64_t in_window = 0;    // lines written this window
    std::uint64_t suppressed = 0;   // lines dropped, pending disclosure
  };

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::uint64_t> rate_limit_per_sec_{16};
  std::atomic<bool> include_timestamp_{true};
  std::atomic<std::uint64_t> lines_written_{0};
  std::atomic<std::uint64_t> lines_suppressed_{0};
  std::mutex mutex_;  // guards out_ and sites_
  std::ostream* out_ = nullptr;  // nullptr = std::cerr
  std::map<std::string, SiteState> sites_;
};

/// One structured line under construction; writes on destruction.
/// Usage:
///
///   obs::LogWarn("sink.retry")("attempt", attempt)("delay_us", delay);
///
/// When the level is below the logger's minimum the constructor leaves
/// the line disabled and every appender is a no-op.
class LogLine {
 public:
  LogLine(Logger* logger, LogLevel level, const char* site)
      : logger_(logger != nullptr && logger->Enabled(level) ? logger
                                                            : nullptr),
        level_(level),
        site_(site) {}

  ~LogLine() {
    if (logger_ != nullptr) logger_->Write(level_, site_, fields_);
  }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept
      : logger_(other.logger_),
        level_(other.level_),
        site_(other.site_),
        fields_(std::move(other.fields_)) {
    other.logger_ = nullptr;
  }
  LogLine& operator=(LogLine&&) = delete;

  LogLine& operator()(std::string_view key, std::string_view value);
  LogLine& operator()(std::string_view key, const char* value) {
    return (*this)(key, std::string_view(value));
  }
  LogLine& operator()(std::string_view key, const std::string& value) {
    return (*this)(key, std::string_view(value));
  }
  LogLine& operator()(std::string_view key, std::uint64_t value);
  LogLine& operator()(std::string_view key, std::int64_t value);
  LogLine& operator()(std::string_view key, int value) {
    return (*this)(key, static_cast<std::int64_t>(value));
  }
  LogLine& operator()(std::string_view key, unsigned value) {
    return (*this)(key, static_cast<std::uint64_t>(value));
  }
  LogLine& operator()(std::string_view key, double value);
  LogLine& operator()(std::string_view key, bool value);

 private:
  Logger* logger_;
  LogLevel level_;
  const char* site_;
  std::string fields_;
};

/// Shorthands on Logger::Default().
inline LogLine LogDebug(const char* site) {
  return LogLine(&Logger::Default(), LogLevel::kDebug, site);
}
inline LogLine LogInfo(const char* site) {
  return LogLine(&Logger::Default(), LogLevel::kInfo, site);
}
inline LogLine LogWarn(const char* site) {
  return LogLine(&Logger::Default(), LogLevel::kWarn, site);
}
inline LogLine LogError(const char* site) {
  return LogLine(&Logger::Default(), LogLevel::kError, site);
}

}  // namespace obs
}  // namespace wum

#endif  // WUM_OBS_LOG_H_
