#include "wum/obs/exposition.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace wum::obs {
namespace {

using internal::RenderDouble;

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

/// One histogram family's derived series, shared by the text renderer.
/// `_count` is rendered as the cumulative bucket total rather than the
/// separately-tracked count atomic: under concurrent writers the two
/// can skew by in-flight observations, and Prometheus requires
/// `+Inf == _count` exactly.
struct HistogramSeries {
  std::vector<std::uint64_t> cumulative;
  std::uint64_t total = 0;
};

HistogramSeries Cumulate(const MetricsSnapshot::HistogramValue& h) {
  HistogramSeries series;
  series.cumulative.reserve(h.counts.size());
  for (std::uint64_t count : h.counts) {
    series.total += count;
    series.cumulative.push_back(series.total);
  }
  return series;
}

void RenderQuantileGauge(std::ostringstream* out, const std::string& base,
                         const char* suffix, double value) {
  *out << "# TYPE " << base << suffix << " gauge\n"
       << base << suffix << " " << RenderDouble(value) << "\n";
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "wum_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const MetricsSnapshot::InfoValue& info : snapshot.infos) {
    const std::string name = PrometheusName(info.name);
    out << "# TYPE " << name << " gauge\n" << name << "{";
    for (std::size_t i = 0; i < info.labels.size(); ++i) {
      out << (i == 0 ? "" : ",") << PrometheusName(info.labels[i].first).substr(4)
          << "=\"" << EscapeLabelValue(info.labels[i].second) << "\"";
    }
    out << "} 1\n";
  }
  for (const MetricsSnapshot::CounterValue& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << counter.value << "\n";
  }
  for (const MetricsSnapshot::GaugeValue& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << gauge.value
        << "\n";
  }
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    const HistogramSeries series = Cumulate(h);
    out << "# TYPE " << name << " histogram\n";
    for (std::size_t b = 0; b < series.cumulative.size(); ++b) {
      out << name << "_bucket{le=\""
          << (b < h.bounds.size() ? RenderDouble(h.bounds[b])
                                  : std::string("+Inf"))
          << "\"} " << series.cumulative[b] << "\n";
    }
    out << name << "_sum " << RenderDouble(h.sum) << "\n";
    out << name << "_count " << series.total << "\n";
    RenderQuantileGauge(&out, name, "_p50", h.p50());
    RenderQuantileGauge(&out, name, "_p90", h.p90());
    RenderQuantileGauge(&out, name, "_p99", h.p99());
  }
  return out.str();
}

namespace {

/// Per-family lint state accumulated while scanning.
struct FamilyState {
  std::string type;          // from the # TYPE line
  bool saw_sample = false;
  // Histogram families only.
  double last_le = 0.0;
  bool saw_le = false;
  bool saw_inf_bucket = false;
  std::uint64_t inf_bucket_value = 0;
  bool saw_count = false;
  std::uint64_t count_value = 0;
  std::uint64_t last_bucket_value = 0;
};

Status LintError(std::size_t line_no, const std::string& message) {
  return Status::InvalidArgument("exposition line " + std::to_string(line_no) +
                                 ": " + message);
}

bool ValidName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

/// Splits `sample_name` into its histogram family when it carries a
/// histogram suffix; returns the name itself otherwise.
std::string FamilyOf(std::string_view sample_name, std::string_view* suffix) {
  for (const char* candidate : {"_bucket", "_sum", "_count"}) {
    const std::string_view s(candidate);
    if (sample_name.size() > s.size() &&
        sample_name.substr(sample_name.size() - s.size()) == s) {
      *suffix = s;
      return std::string(sample_name.substr(0, sample_name.size() - s.size()));
    }
  }
  *suffix = {};
  return std::string(sample_name);
}

}  // namespace

Status LintExposition(std::string_view text) {
  std::map<std::string, FamilyState> families;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos
                                                       : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only TYPE comments are structural; HELP and plain comments pass.
      if (line.rfind("# TYPE ", 0) != 0) continue;
      std::istringstream fields{std::string(line.substr(7))};
      std::string name, type;
      fields >> name >> type;
      if (!ValidName(name)) {
        return LintError(line_no, "bad metric name in TYPE line: " + name);
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return LintError(line_no, "unknown metric type: " + type);
      }
      FamilyState& family = families[name];
      if (family.saw_sample) {
        return LintError(line_no, "TYPE line after samples for " + name);
      }
      if (!family.type.empty()) {
        return LintError(line_no, "duplicate TYPE line for " + name);
      }
      family.type = type;
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && IsNameChar(line[name_end])) ++name_end;
    const std::string_view sample_name = line.substr(0, name_end);
    if (!ValidName(sample_name)) {
      return LintError(line_no, "bad sample name: " + std::string(line));
    }
    std::string_view rest = line.substr(name_end);
    std::string le_value;
    if (!rest.empty() && rest[0] == '{') {
      const std::size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        return LintError(line_no, "unterminated label set");
      }
      const std::string_view labels = rest.substr(1, close - 1);
      const std::size_t le = labels.find("le=\"");
      if (le != std::string_view::npos) {
        const std::size_t value_start = le + 4;
        const std::size_t value_end = labels.find('"', value_start);
        if (value_end == std::string_view::npos) {
          return LintError(line_no, "unterminated le label");
        }
        le_value = std::string(labels.substr(value_start,
                                             value_end - value_start));
      }
      rest = rest.substr(close + 1);
    }
    if (rest.empty() || rest[0] != ' ') {
      return LintError(line_no, "missing value: " + std::string(line));
    }
    const std::string value_text{rest.substr(1)};
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str() || *parse_end != '\0') {
      return LintError(line_no, "unparseable value: " + value_text);
    }

    std::string_view suffix;
    std::string family_name = FamilyOf(sample_name, &suffix);
    auto it = families.find(family_name);
    if (it == families.end() || it->second.type.empty()) {
      // A histogram-ish suffix on a non-histogram family (e.g. a gauge
      // legitimately named *_count) falls back to its own family.
      it = families.find(std::string(sample_name));
      if (it == families.end() || it->second.type.empty()) {
        return LintError(line_no, "sample before TYPE line: " +
                                      std::string(sample_name));
      }
      family_name = std::string(sample_name);
      suffix = {};
    }
    FamilyState& family = it->second;
    family.saw_sample = true;
    if (family.type != "histogram") continue;

    if (suffix == "_bucket") {
      if (le_value.empty()) {
        return LintError(line_no, family_name + "_bucket without le label");
      }
      const std::uint64_t bucket_value = static_cast<std::uint64_t>(value);
      if (family.saw_le && bucket_value < family.last_bucket_value) {
        return LintError(line_no, family_name +
                                      "_bucket not cumulative at le=" +
                                      le_value);
      }
      if (family.saw_inf_bucket) {
        return LintError(line_no,
                         family_name + "_bucket after its +Inf bucket");
      }
      if (le_value == "+Inf") {
        family.saw_inf_bucket = true;
        family.inf_bucket_value = bucket_value;
      } else {
        const double le = std::strtod(le_value.c_str(), nullptr);
        if (family.saw_le && le <= family.last_le) {
          return LintError(line_no, family_name +
                                        "_bucket le values not increasing");
        }
        family.last_le = le;
      }
      family.saw_le = true;
      family.last_bucket_value = bucket_value;
    } else if (suffix == "_count") {
      family.saw_count = true;
      family.count_value = static_cast<std::uint64_t>(value);
    }
  }
  for (const auto& [name, family] : families) {
    if (family.type != "histogram" || !family.saw_sample) continue;
    if (!family.saw_inf_bucket) {
      return Status::InvalidArgument("exposition: histogram " + name +
                                     " has no +Inf bucket");
    }
    if (!family.saw_count) {
      return Status::InvalidArgument("exposition: histogram " + name +
                                     " has no _count sample");
    }
    if (family.count_value != family.inf_bucket_value) {
      return Status::InvalidArgument(
          "exposition: histogram " + name + " +Inf bucket (" +
          std::to_string(family.inf_bucket_value) + ") != _count (" +
          std::to_string(family.count_value) + ")");
    }
  }
  return Status::OK();
}

}  // namespace wum::obs
