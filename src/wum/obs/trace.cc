#include "wum/obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

namespace wum {
namespace obs {
namespace {

/// Distinguishes recorders in per-thread caches: ids are never reused,
/// so a cache entry for a destroyed recorder can never be mistaken for
/// a live one.
std::atomic<std::uint64_t> g_recorder_ids{1};

}  // namespace

/// One recording thread's private ring. Only the owning thread writes;
/// every field that export may read concurrently is atomic (relaxed
/// stores by the owner, published by the release store of `written`),
/// which is what keeps the recorder TSan-clean without a hot-path lock.
struct TraceRecorder::ThreadBuffer {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<double> ts_us{0.0};
    std::atomic<double> dur_us{0.0};
    std::atomic<std::uint64_t> shard{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<bool> instant{false};
  };

  explicit ThreadBuffer(std::size_t capacity) : slots(capacity) {}

  std::vector<Slot> slots;
  /// Events ever pushed; slot index is written % capacity.
  std::atomic<std::uint64_t> written{0};
  std::thread::id owner;
  std::uint64_t tid = 0;  // 1-based registration order, stable for export
};

TraceRecorder::TraceRecorder(Options options)
    : capacity_(options.events_per_thread == 0 ? 1
                                               : options.events_per_thread),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)),
      epoch_us_(internal::NowMicros()),
      recorded_mirror_(CounterIn(options.metrics, "obs.trace.events_recorded")),
      dropped_mirror_(CounterIn(options.metrics, "obs.trace.dropped_events")),
      threads_mirror_(GaugeIn(options.metrics, "obs.trace.threads")) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  struct Cache {
    std::uint64_t recorder_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.recorder_id == id_) return cache.buffer;
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-find an existing buffer rather than trusting the cache: a thread
  // alternating between recorders keeps one buffer per recorder.
  ThreadBuffer* buffer = nullptr;
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& candidate : buffers_) {
    if (candidate->owner == self) {
      buffer = candidate.get();
      break;
    }
  }
  if (buffer == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
    buffer = buffers_.back().get();
    buffer->owner = self;
    buffer->tid = buffers_.size();
    threads_mirror_.Set(buffers_.size());
  }
  cache = {id_, buffer};
  return buffer;
}

void TraceRecorder::Push(const char* name, double ts_us, double dur_us,
                         bool instant, std::uint64_t shard,
                         std::uint64_t seq) {
  ThreadBuffer* buffer = BufferForThisThread();
  const std::uint64_t index =
      buffer->written.load(std::memory_order_relaxed);
  ThreadBuffer::Slot& slot = buffer->slots[index % capacity_];
  const double rebased = ts_us - epoch_us_;
  slot.name.store(name, std::memory_order_relaxed);
  slot.ts_us.store(rebased < 0.0 ? 0.0 : rebased, std::memory_order_relaxed);
  slot.dur_us.store(dur_us < 0.0 ? 0.0 : dur_us, std::memory_order_relaxed);
  slot.shard.store(shard, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.instant.store(instant, std::memory_order_relaxed);
  buffer->written.store(index + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  recorded_mirror_.Increment();
  if (index >= capacity_) {  // the slot held a live event; it just died
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_mirror_.Increment();
  }
}

std::size_t TraceRecorder::threads_registered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::uint64_t written =
          buffer->written.load(std::memory_order_acquire);
      const std::uint64_t retained =
          std::min<std::uint64_t>(written, capacity_);
      events.reserve(events.size() + retained);
      for (std::uint64_t i = written - retained; i < written; ++i) {
        const ThreadBuffer::Slot& slot = buffer->slots[i % capacity_];
        TraceEvent event;
        event.name = slot.name.load(std::memory_order_relaxed);
        if (event.name == nullptr) continue;
        event.tid = buffer->tid;
        event.ts_us = slot.ts_us.load(std::memory_order_relaxed);
        event.dur_us = slot.dur_us.load(std::memory_order_relaxed);
        event.instant = slot.instant.load(std::memory_order_relaxed);
        event.shard = slot.shard.load(std::memory_order_relaxed);
        event.seq = slot.seq.load(std::memory_order_relaxed);
        events.push_back(event);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return events;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::uint64_t max_tid = 0;
  for (const TraceEvent& event : events) {
    max_tid = std::max(max_tid, event.tid);
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (std::uint64_t tid = 1; tid <= max_tid; ++tid) {
    out << (first ? "" : ",")
        << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"wum-thread-" << tid << "\"}}";
    first = false;
  }
  for (const TraceEvent& event : events) {
    out << (first ? "" : ",") << "{\"name\":\""
        << internal::EscapeJson(event.name) << "\",\"cat\":\"wum\",";
    if (event.instant) {
      out << "\"ph\":\"i\",\"s\":\"t\",";
    } else {
      out << "\"ph\":\"X\",\"dur\":" << internal::RenderDouble(event.dur_us)
          << ",";
    }
    out << "\"ts\":" << internal::RenderDouble(event.ts_us)
        << ",\"pid\":1,\"tid\":" << event.tid << ",\"args\":{\"shard\":"
        << event.shard << ",\"seq\":" << event.seq << "}}";
    first = false;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << ChromeTraceJson();
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace wum
