#include "wum/obs/log.h"

#include <chrono>
#include <cstdio>
#include <iostream>

#include "wum/obs/metrics.h"  // internal::NowMicros / RenderDouble

namespace wum {
namespace obs {
namespace {

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return Status::InvalidArgument(
      "unknown log level '" + text +
      "' (expected debug|info|warn|error|off)");
}

Logger& Logger::Default() {
  static Logger* const kLogger = new Logger();  // leaked: outlives all users
  return *kLogger;
}

void Logger::set_stream(std::ostream* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ = out;
}

void Logger::Write(LogLevel level, const char* site,
                   const std::string& fields) {
  const std::uint64_t limit = rate_limit_per_sec_.load(std::memory_order_relaxed);
  std::uint64_t carried_suppressed = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (limit > 0) {
    // Window on the obs clock so tests can drive suppression
    // deterministically through SetClockForTesting.
    const std::uint64_t now_sec =
        static_cast<std::uint64_t>(internal::NowMicros() / 1e6);
    SiteState& state = sites_[site];
    if (state.window_sec != now_sec) {
      carried_suppressed = state.suppressed;
      state.window_sec = now_sec;
      state.in_window = 0;
      state.suppressed = 0;
    }
    if (state.in_window >= limit) {
      ++state.suppressed;
      lines_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++state.in_window;
  }
  std::ostream& out = out_ == nullptr ? std::cerr : *out_;
  if (include_timestamp_.load(std::memory_order_relaxed)) {
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    const long long micros =
        std::chrono::duration_cast<std::chrono::microseconds>(wall).count();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "ts=%lld.%06lld ", micros / 1000000,
                  micros % 1000000);
    out << buf;
  }
  out << "level=" << LogLevelName(level) << " site=" << site;
  if (carried_suppressed > 0) out << " suppressed=" << carried_suppressed;
  out << fields << "\n";
  out.flush();
  lines_written_.fetch_add(1, std::memory_order_relaxed);
}

LogLine& LogLine::operator()(std::string_view key, std::string_view value) {
  if (logger_ == nullptr) return *this;
  fields_.push_back(' ');
  fields_.append(key);
  fields_.push_back('=');
  if (NeedsQuoting(value)) {
    AppendQuoted(&fields_, value);
  } else {
    fields_.append(value);
  }
  return *this;
}

LogLine& LogLine::operator()(std::string_view key, std::uint64_t value) {
  if (logger_ == nullptr) return *this;
  fields_.push_back(' ');
  fields_.append(key);
  fields_.push_back('=');
  fields_.append(std::to_string(value));
  return *this;
}

LogLine& LogLine::operator()(std::string_view key, std::int64_t value) {
  if (logger_ == nullptr) return *this;
  fields_.push_back(' ');
  fields_.append(key);
  fields_.push_back('=');
  fields_.append(std::to_string(value));
  return *this;
}

LogLine& LogLine::operator()(std::string_view key, double value) {
  if (logger_ == nullptr) return *this;
  fields_.push_back(' ');
  fields_.append(key);
  fields_.push_back('=');
  fields_.append(internal::RenderDouble(value));
  return *this;
}

LogLine& LogLine::operator()(std::string_view key, bool value) {
  if (logger_ == nullptr) return *this;
  fields_.push_back(' ');
  fields_.append(key);
  fields_.push_back('=');
  fields_.append(value ? "true" : "false");
  return *this;
}

}  // namespace obs
}  // namespace wum
