// Prometheus text-format exposition of a MetricsSnapshot, plus the
// validator the tests, `websra_top --lint` and the CI smoke leg share.
//
// Mapping (docs/observability.md, "Scraping a live daemon"):
//   * every metric name is prefixed `wum_` and sanitized to the
//     Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]* (dots and any other
//     illegal character become underscores);
//   * counters  -> `# TYPE wum_x counter`, one sample;
//   * gauges    -> `# TYPE wum_x gauge`, one sample;
//   * histograms -> `# TYPE wum_x histogram` with *cumulative*
//     `wum_x_bucket{le="..."}` samples (the snapshot stores per-bucket
//     counts; the exporter accumulates them, and the `+Inf` bucket
//     always equals `wum_x_count`), `wum_x_sum` and `wum_x_count`,
//     plus the interpolated p50/p90/p99 as separate gauges
//     `wum_x_p50` / `wum_x_p90` / `wum_x_p99` (a histogram and a
//     summary may not share a name, so the quantiles get their own
//     metric families);
//   * infos     -> `# TYPE wum_x gauge`, `wum_x{label="value",...} 1`
//     with label values escaped (backslash, double quote, newline).
//
// Output is deterministic for a given snapshot: families render in
// snapshot order (sorted by name within each kind), infos first, then
// counters, gauges, histograms.

#ifndef WUM_OBS_EXPOSITION_H_
#define WUM_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "wum/common/result.h"
#include "wum/obs/metrics.h"

namespace wum::obs {

/// Sanitizes one metric name into the Prometheus charset and prefixes
/// `wum_`: "engine.shard0.records_in" -> "wum_engine_shard0_records_in".
std::string PrometheusName(std::string_view name);

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// Renders `snapshot` in Prometheus text exposition format version
/// 0.0.4 (the `text/plain; version=0.0.4` content type).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Structural validator for exposition text produced by this module (or
/// anything claiming the format): checks metric-name charset, that every
/// sample is preceded by a `# TYPE` line for its family, that histogram
/// `_bucket` series are cumulative (monotonically non-decreasing in
/// `le` order) and end in a `+Inf` bucket equal to `_count`, and that
/// every sample line parses as `name{labels} value`. Returns the first
/// violation as InvalidArgument, OK when clean.
Status LintExposition(std::string_view text);

}  // namespace wum::obs

#endif  // WUM_OBS_EXPOSITION_H_
