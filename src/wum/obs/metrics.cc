#include "wum/obs/metrics.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace wum {
namespace obs {
namespace internal {
namespace {

/// Lock-free accumulate for atomic<double> (no fetch_add requirement on
/// floating atomics).
void AtomicAdd(std::atomic<double>* cell, double delta) {
  double seen = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(seen, seen + delta,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* cell, double value) {
  double seen = cell->load(std::memory_order_relaxed);
  while (value < seen && !cell->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* cell, double value) {
  double seen = cell->load(std::memory_order_relaxed);
  while (value > seen && !cell->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

std::atomic<ClockMicrosFn> g_clock_override{nullptr};
std::atomic<EpochSecondsFn> g_epoch_clock_override{nullptr};

double SteadyClockMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double NowMicros() {
  const ClockMicrosFn fn = g_clock_override.load(std::memory_order_acquire);
  return fn == nullptr ? SteadyClockMicros() : fn();
}

void SetClockForTesting(ClockMicrosFn fn) {
  g_clock_override.store(fn, std::memory_order_release);
}

std::uint64_t NowEpochSeconds() {
  const EpochSecondsFn fn =
      g_epoch_clock_override.load(std::memory_order_acquire);
  if (fn != nullptr) return fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void SetEpochClockForTesting(EpochSecondsFn fn) {
  g_epoch_clock_override.store(fn, std::memory_order_release);
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc() ? std::string(buffer, end) : std::string("0");
}

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1) {
  // Sentinels; Snapshot() normalizes them to 0 while count == 0.
  min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
}

void HistogramCell::Observe(double value) {
  std::size_t i = 0;
  while (i < bounds.size() && value > bounds[i]) ++i;
  buckets[i].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum, value);
  AtomicMin(&min, value);
  AtomicMax(&max, value);
}

}  // namespace internal

const std::vector<double>& DefaultLatencyBucketsUs() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      1,     2,     5,      10,     20,     50,      100,     200,     500,
      1000,  2000,  5000,   10000,  20000,  50000,   100000,  200000,
      500000, 1000000, 2000000, 5000000, 10000000};
  return *kBuckets;
}

Counter MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Counter(cell.get());
}

Gauge MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Gauge(cell.get());
}

Histogram MetricRegistry::GetHistogram(const std::string& name,
                                       const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = histograms_[name];
  if (cell == nullptr) {
    std::vector<double> bounds = upper_bounds;
    if (bounds.empty()) bounds = DefaultLatencyBucketsUs();
    cell = std::make_unique<internal::HistogramCell>(std::move(bounds));
  }
  return Histogram(cell.get());
}

void MetricRegistry::SetInfo(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  infos_[name] = std::move(labels);
}

std::size_t MetricRegistry::AddProbe(std::function<void()> probe) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  const std::size_t id = next_probe_id_++;
  probes_.emplace_back(id, std::move(probe));
  return id;
}

void MetricRegistry::RemoveProbe(std::size_t id) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  for (auto it = probes_.begin(); it != probes_.end(); ++it) {
    if (it->first == id) {
      probes_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  // Run probes before reading cells so scrape-time gauges are fresh.
  // The probe list is copied out so a probe writing a handle can never
  // contend with a concurrent AddProbe, and no registry lock is held
  // while user code runs.
  std::vector<std::pair<std::size_t, std::function<void()>>> probes;
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probes = probes_;
  }
  for (const auto& [id, probe] : probes) probe();
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snapshot.counters.push_back(
        {name, cell->load(std::memory_order_relaxed)});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snapshot.gauges.push_back({name, cell->load(std::memory_order_relaxed)});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.bounds = cell->bounds;
    value.counts.reserve(cell->buckets.size());
    for (const auto& bucket : cell->buckets) {
      value.counts.push_back(bucket.load(std::memory_order_relaxed));
    }
    value.count = cell->count.load(std::memory_order_relaxed);
    value.sum = cell->sum.load(std::memory_order_relaxed);
    if (value.count == 0) {
      value.min = 0.0;
      value.max = 0.0;
    } else {
      value.min = cell->min.load(std::memory_order_relaxed);
      value.max = cell->max.load(std::memory_order_relaxed);
    }
    snapshot.histograms.push_back(std::move(value));
  }
  snapshot.infos.reserve(infos_.size());
  for (const auto& [name, labels] : infos_) {
    snapshot.infos.push_back({name, labels});
  }
  return snapshot;  // std::map iteration => sorted by name, deterministic
}

Counter CounterIn(MetricRegistry* registry, const std::string& name) {
  return registry == nullptr ? Counter() : registry->GetCounter(name);
}

Gauge GaugeIn(MetricRegistry* registry, const std::string& name) {
  return registry == nullptr ? Gauge() : registry->GetGauge(name);
}

Histogram HistogramIn(MetricRegistry* registry, const std::string& name,
                      const std::vector<double>& upper_bounds) {
  return registry == nullptr ? Histogram()
                             : registry->GetHistogram(name, upper_bounds);
}

using internal::EscapeJson;
using internal::RenderDouble;

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterValue& counter : counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  for (const GaugeValue& gauge : gauges) {
    if (gauge.name == name) return &gauge;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& histogram : histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterOrZero(const std::string& name) const {
  const CounterValue* counter = FindCounter(name);
  return counter == nullptr ? 0 : counter->value;
}

std::uint64_t MetricsSnapshot::CounterSumByPrefix(
    const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const CounterValue& counter : counters) {
    if (counter.name.compare(0, prefix.size(), prefix) == 0) {
      total += counter.value;
    }
  }
  return total;
}

double MetricsSnapshot::HistogramValue::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    double lower = b == 0 ? min : bounds[b - 1];
    double upper = b < bounds.size() ? bounds[b] : max;
    if (lower < min) lower = min;
    if (upper > max) upper = max;
    if (upper < lower) upper = lower;
    const double fraction = (rank - before) / static_cast<double>(in_bucket);
    const double value = lower + (upper - lower) * fraction;
    return value < min ? min : (value > max ? max : value);
  }
  return max;  // unreachable with consistent counts; harmless otherwise
}

namespace {

/// Shared body of ToJson (pretty) and ToJsonLine (compact): identical
/// content, indentation-only differences.
std::string RenderSnapshotJson(const MetricsSnapshot& snapshot, bool pretty) {
  const char* outer = pretty ? "\n  " : "";
  const char* inner = pretty ? "\n    " : "";
  const char* close = pretty ? "\n  }" : "}";
  std::ostringstream out;
  out << "{" << outer << "\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "" : ",") << inner << "\""
        << EscapeJson(snapshot.counters[i].name)
        << "\": " << snapshot.counters[i].value;
  }
  out << (snapshot.counters.empty() ? "}" : close) << "," << outer
      << "\"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "" : ",") << inner << "\""
        << EscapeJson(snapshot.gauges[i].name)
        << "\": " << snapshot.gauges[i].value;
  }
  out << (snapshot.gauges.empty() ? "}" : close) << "," << outer
      << "\"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const MetricsSnapshot::HistogramValue& h = snapshot.histograms[i];
    out << (i == 0 ? "" : ",") << inner << "\"" << EscapeJson(h.name)
        << "\": {\"count\": " << h.count << ", \"sum\": "
        << RenderDouble(h.sum) << ", \"min\": " << RenderDouble(h.min)
        << ", \"max\": " << RenderDouble(h.max) << ", \"mean\": "
        << RenderDouble(h.mean()) << ", \"p50\": " << RenderDouble(h.p50())
        << ", \"p90\": " << RenderDouble(h.p90()) << ", \"p99\": "
        << RenderDouble(h.p99()) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": "
          << (b < h.bounds.size()
                  ? RenderDouble(h.bounds[b])
                  : std::string("\"+Inf\""))
          << ", \"count\": " << h.counts[b] << "}";
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "}" : close);
  // Rendered only when present so snapshots from registries without
  // info metrics keep their historical byte shape.
  if (!snapshot.infos.empty()) {
    out << "," << outer << "\"infos\": {";
    for (std::size_t i = 0; i < snapshot.infos.size(); ++i) {
      const MetricsSnapshot::InfoValue& info = snapshot.infos[i];
      out << (i == 0 ? "" : ",") << inner << "\"" << EscapeJson(info.name)
          << "\": {";
      for (std::size_t l = 0; l < info.labels.size(); ++l) {
        out << (l == 0 ? "" : ", ") << "\"" << EscapeJson(info.labels[l].first)
            << "\": \"" << EscapeJson(info.labels[l].second) << "\"";
      }
      out << "}";
    }
    out << (snapshot.infos.empty() ? "}" : close);
  }
  out << (pretty ? "\n}\n" : "}");
  return out.str();
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  return RenderSnapshotJson(*this, /*pretty=*/true);
}

std::string MetricsSnapshot::ToJsonLine() const {
  return RenderSnapshotJson(*this, /*pretty=*/false);
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const CounterValue& counter : counters) {
    out << "counter," << counter.name << ",value," << counter.value << "\n";
  }
  for (const GaugeValue& gauge : gauges) {
    out << "gauge," << gauge.name << ",value," << gauge.value << "\n";
  }
  for (const HistogramValue& h : histograms) {
    out << "histogram," << h.name << ",count," << h.count << "\n";
    out << "histogram," << h.name << ",sum," << RenderDouble(h.sum) << "\n";
    out << "histogram," << h.name << ",mean," << RenderDouble(h.mean())
        << "\n";
    out << "histogram," << h.name << ",min," << RenderDouble(h.min) << "\n";
    out << "histogram," << h.name << ",max," << RenderDouble(h.max) << "\n";
    out << "histogram," << h.name << ",p50," << RenderDouble(h.p50()) << "\n";
    out << "histogram," << h.name << ",p90," << RenderDouble(h.p90()) << "\n";
    out << "histogram," << h.name << ",p99," << RenderDouble(h.p99()) << "\n";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << "histogram," << h.name << ",le_"
          << (b < h.bounds.size() ? RenderDouble(h.bounds[b]) : "inf") << ","
          << h.counts[b] << "\n";
    }
  }
  for (const InfoValue& info : infos) {
    for (const auto& [key, value] : info.labels) {
      out << "info," << info.name << "," << key << "," << value << "\n";
    }
  }
  return out.str();
}

Status WriteMetricsFile(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? snapshot.ToCsv() : snapshot.ToJson());
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace wum
