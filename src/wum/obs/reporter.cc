#include "wum/obs/reporter.h"

#include <utility>

namespace wum {
namespace obs {

Result<std::unique_ptr<MetricsReporter>> MetricsReporter::Start(
    MetricRegistry* registry, Options options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("MetricsReporter needs a registry");
  }
  if (options.interval.count() <= 0) {
    return Status::InvalidArgument("reporter interval must be positive");
  }
  if (options.path.empty()) {
    return Status::InvalidArgument("reporter path must be non-empty");
  }
  std::unique_ptr<MetricsReporter> reporter(
      new MetricsReporter(registry, std::move(options)));
  if (!reporter->out_) {
    return Status::IoError("cannot open " + reporter->options_.path);
  }
  reporter->thread_ = std::thread([raw = reporter.get()] { raw->Run(); });
  return reporter;
}

MetricsReporter::MetricsReporter(MetricRegistry* registry, Options options)
    : registry_(registry),
      options_(std::move(options)),
      started_(std::chrono::steady_clock::now()),
      snapshots_mirror_(registry->GetCounter("obs.reporter.snapshots")),
      out_(options_.path, std::ios::trunc) {}

MetricsReporter::~MetricsReporter() { (void)Stop(); }

void MetricsReporter::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, options_.interval,
                     [this] { return stop_requested_; })) {
      break;
    }
    // Write outside the lock: Stop() never runs concurrently with this
    // (it joins before its own final WriteSnapshotLine).
    lock.unlock();
    WriteSnapshotLine();
    lock.lock();
  }
}

void MetricsReporter::WriteSnapshotLine() {
  // Count first so the line's own snapshot reflects this write.
  snapshots_mirror_.Increment();
  const MetricsSnapshot snapshot = registry_->Snapshot();
  const auto uptime = std::chrono::steady_clock::now() - started_;
  const auto uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(uptime).count();
  out_ << "{\"seq\": " << seq_++ << ", \"uptime_ms\": " << uptime_ms
       << ", \"metrics\": " << snapshot.ToJsonLine() << "}\n";
  out_.flush();
  if (!out_) {
    if (error_.ok()) error_ = Status::IoError("write failed: " + options_.path);
    return;
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
}

Status MetricsReporter::Stop() {
  bool do_join = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
    if (!joined_) {
      joined_ = true;
      do_join = true;
    }
  }
  cv_.notify_all();
  if (do_join) {
    // Not joinable when Start bailed before spawning (open failure):
    // the destructor of the half-built reporter still lands here.
    if (thread_.joinable()) {
      thread_.join();
      WriteSnapshotLine();  // final state, even for sub-interval runs
    }
  }
  return error_;
}

}  // namespace obs
}  // namespace wum
