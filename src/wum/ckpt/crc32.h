// IEEE CRC-32 (the polynomial used by zip/gzip/Ethernet), table-driven.
// Every frame the checkpoint codec writes is covered by one of these
// checksums, so truncation and bit-rot are detected on read instead of
// silently corrupting restored engine state.

#ifndef WUM_CKPT_CRC32_H_
#define WUM_CKPT_CRC32_H_

#include <cstdint>
#include <string_view>

namespace wum::ckpt {

/// CRC-32 of `data` (polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF).
/// Crc32("123456789") == 0xCBF43926, the standard check value.
std::uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks in order, starting from Crc32("").
///   crc = Crc32Update(Crc32Update(0, a), b) == Crc32(a + b)
/// (the seed for an empty prefix is 0, i.e. Crc32("")).
std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data);

}  // namespace wum::ckpt

#endif  // WUM_CKPT_CRC32_H_
