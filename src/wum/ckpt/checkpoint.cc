#include "wum/ckpt/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace wum::ckpt {
namespace {

namespace fs = std::filesystem;

/// Flushes `path` — a file's data blocks, or a directory's entries — to
/// stable storage, so the commit protocol survives power loss, not just
/// process death. On platforms without the POSIX API this is a no-op
/// and durability degrades to process-crash only.
Status SyncPath(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
#endif
  return Status::OK();
}

Status DecodeLogRecord(Decoder* decoder, LogRecord* record) {
  WUM_ASSIGN_OR_RETURN(record->client_ip, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(record->timestamp, decoder->GetVarint());
  WUM_ASSIGN_OR_RETURN(std::uint8_t method, decoder->GetU8());
  if (method > static_cast<std::uint8_t>(HttpMethod::kHead)) {
    return Status::ParseError("dead letter has invalid http method " +
                              std::to_string(method));
  }
  record->method = static_cast<HttpMethod>(method);
  WUM_ASSIGN_OR_RETURN(record->url, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(record->protocol, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(std::int64_t status_code, decoder->GetVarint());
  record->status_code = static_cast<int>(status_code);
  WUM_ASSIGN_OR_RETURN(record->bytes, decoder->GetVarint());
  WUM_ASSIGN_OR_RETURN(record->referrer, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(record->user_agent, decoder->GetString());
  return Status::OK();
}

void EncodeLogRecord(const LogRecord& record, Encoder* encoder) {
  encoder->PutString(record.client_ip);
  encoder->PutVarint(record.timestamp);
  encoder->PutU8(static_cast<std::uint8_t>(record.method));
  encoder->PutString(record.url);
  encoder->PutString(record.protocol);
  encoder->PutVarint(record.status_code);
  encoder->PutVarint(record.bytes);
  encoder->PutString(record.referrer);
  encoder->PutString(record.user_agent);
}

void EncodeStatus(const Status& status, Encoder* encoder) {
  encoder->PutU8(static_cast<std::uint8_t>(status.code()));
  encoder->PutString(status.ok() ? std::string_view() : status.message());
}

Status DecodeStatus(Decoder* decoder, Status* status) {
  WUM_ASSIGN_OR_RETURN(std::uint8_t code, decoder->GetU8());
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status::ParseError("invalid status code " + std::to_string(code));
  }
  WUM_ASSIGN_OR_RETURN(std::string message, decoder->GetString());
  *status = code == 0 ? Status::OK()
                      : Status(static_cast<StatusCode>(code),
                               std::move(message));
  return Status::OK();
}

}  // namespace

void EncodeManifest(const CheckpointManifest& manifest, Encoder* encoder) {
  encoder->PutUvarint(manifest.epoch);
  encoder->PutU32(manifest.num_shards);
  encoder->PutUvarint(manifest.records_seen);
  encoder->PutString(manifest.heuristic);
  encoder->PutString(manifest.identity);
  encoder->PutVarint(manifest.max_session_duration);
  encoder->PutVarint(manifest.max_page_stay);
  encoder->PutString(manifest.sink_state);
}

Status DecodeManifest(Decoder* decoder, CheckpointManifest* manifest) {
  WUM_ASSIGN_OR_RETURN(manifest->epoch, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(manifest->num_shards, decoder->GetU32());
  WUM_ASSIGN_OR_RETURN(manifest->records_seen, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(manifest->heuristic, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(manifest->identity, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(manifest->max_session_duration, decoder->GetVarint());
  WUM_ASSIGN_OR_RETURN(manifest->max_page_stay, decoder->GetVarint());
  WUM_ASSIGN_OR_RETURN(manifest->sink_state, decoder->GetString());
  return Status::OK();
}

void EncodeSession(const Session& session, Encoder* encoder) {
  encoder->PutUvarint(session.requests.size());
  for (const PageRequest& request : session.requests) {
    encoder->PutUvarint(request.page);
    encoder->PutVarint(request.timestamp);
  }
}

Status DecodeSession(Decoder* decoder, Session* session) {
  WUM_ASSIGN_OR_RETURN(std::uint64_t count, decoder->GetUvarint());
  // Each encoded request is at least two bytes, so a count beyond the
  // remaining byte count is corruption — rejected before any reserve.
  if (count > decoder->remaining()) {
    return Status::ParseError("session request count " +
                              std::to_string(count) +
                              " exceeds payload size");
  }
  session->requests.clear();
  session->requests.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WUM_ASSIGN_OR_RETURN(std::uint64_t page, decoder->GetUvarint());
    if (page >= kInvalidPage) {
      return Status::ParseError("session page id out of range");
    }
    WUM_ASSIGN_OR_RETURN(std::int64_t timestamp, decoder->GetVarint());
    session->requests.push_back(
        PageRequest{static_cast<PageId>(page), timestamp});
  }
  return Status::OK();
}

void EncodeDeadLetter(const DeadLetter& letter, Encoder* encoder) {
  encoder->PutU8(static_cast<std::uint8_t>(letter.stage));
  encoder->PutUvarint(letter.shard);
  EncodeStatus(letter.reason, encoder);
  encoder->PutU8(letter.record.has_value() ? 1 : 0);
  if (letter.record.has_value()) EncodeLogRecord(*letter.record, encoder);
  encoder->PutString(letter.detail);
  encoder->PutUvarint(letter.records_covered);
}

Status DecodeDeadLetter(Decoder* decoder, DeadLetter* letter) {
  WUM_ASSIGN_OR_RETURN(std::uint8_t stage, decoder->GetU8());
  if (stage > static_cast<std::uint8_t>(DeadLetter::Stage::kShardDead)) {
    return Status::ParseError("invalid dead-letter stage " +
                              std::to_string(stage));
  }
  letter->stage = static_cast<DeadLetter::Stage>(stage);
  WUM_ASSIGN_OR_RETURN(std::uint64_t shard, decoder->GetUvarint());
  letter->shard = static_cast<std::size_t>(shard);
  WUM_RETURN_NOT_OK(DecodeStatus(decoder, &letter->reason));
  WUM_ASSIGN_OR_RETURN(std::uint8_t has_record, decoder->GetU8());
  if (has_record > 1) {
    return Status::ParseError("invalid dead-letter record flag");
  }
  if (has_record == 1) {
    LogRecord record;
    WUM_RETURN_NOT_OK(DecodeLogRecord(decoder, &record));
    letter->record = std::move(record);
  } else {
    letter->record.reset();
  }
  WUM_ASSIGN_OR_RETURN(letter->detail, decoder->GetString());
  WUM_ASSIGN_OR_RETURN(letter->records_covered, decoder->GetUvarint());
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + temp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + temp);
  }
  // The data must be durable before the rename can expose it: without
  // this ordering the rename could reach disk first and a power loss
  // would leave `path` pointing at lost blocks.
  Status synced = SyncPath(temp);
  if (!synced.ok()) {
    std::error_code ec;
    fs::remove(temp, ec);
    return synced;
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return Status::IoError("rename " + temp + " -> " + path + " failed");
  }
  // Persist the rename itself (the directory entry for `path`).
  const std::string parent = fs::path(path).parent_path().string();
  return SyncPath(parent.empty() ? "." : parent);
}

Status WriteFramedFile(const std::string& path, std::string_view magic,
                       const std::vector<std::string>& payloads) {
  std::ostringstream buffer(std::ios::binary);
  FrameWriter writer(&buffer);
  WUM_RETURN_NOT_OK(writer.WriteHeader(magic, kCheckpointVersion));
  for (const std::string& payload : payloads) {
    WUM_RETURN_NOT_OK(writer.WriteFrame(payload));
  }
  return WriteFileAtomic(path, buffer.str());
}

Result<std::vector<std::string>> ReadFramedFile(const std::string& path,
                                                std::string_view magic) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat " + path);
  if (size > kMaxCheckpointFileBytes) {
    return Status::ParseError(path + " is " + std::to_string(size) +
                              " bytes, beyond the checkpoint file bound");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  FrameReader reader(&in);
  Status header = reader.ReadHeader(magic, kCheckpointVersion);
  if (!header.ok()) {
    return Status(header.code(), path + ": " + header.message());
  }
  std::vector<std::string> payloads;
  while (true) {
    Result<std::optional<std::string>> frame = reader.ReadFrame();
    if (!frame.ok()) {
      return Status(frame.status().code(),
                    path + ": " + frame.status().message());
    }
    if (!frame->has_value()) break;
    payloads.push_back(std::move(**frame));
  }
  return payloads;
}

std::string EpochDirName(std::uint64_t epoch) {
  return "epoch-" + std::to_string(epoch);
}

Status CommitCurrent(const std::string& dir, std::uint64_t epoch) {
  Encoder encoder;
  encoder.PutUvarint(epoch);
  std::ostringstream buffer(std::ios::binary);
  FrameWriter writer(&buffer);
  WUM_RETURN_NOT_OK(writer.WriteHeader(kCurrentMagic, kCheckpointVersion));
  WUM_RETURN_NOT_OK(writer.WriteFrame(encoder.buffer()));
  return WriteFileAtomic(dir + "/CURRENT", buffer.str());
}

Result<std::uint64_t> ReadCurrent(const std::string& dir) {
  const std::string path = dir + "/CURRENT";
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    return Status::NotFound("no checkpoint in " + dir + " (missing CURRENT)");
  }
  WUM_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                       ReadFramedFile(path, kCurrentMagic));
  if (payloads.size() != 1) {
    return Status::ParseError(path + ": expected exactly one frame, found " +
                              std::to_string(payloads.size()));
  }
  Decoder decoder(payloads[0]);
  WUM_ASSIGN_OR_RETURN(std::uint64_t epoch, decoder.GetUvarint());
  WUM_RETURN_NOT_OK(decoder.ExpectEnd());
  return epoch;
}

void RemoveStaleEpochs(const std::string& dir, std::uint64_t keep_epoch) {
  const std::string keep = EpochDirName(keep_epoch);
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("epoch-", 0) == 0 && name != keep) {
      fs::remove_all(entry.path(), ec);  // best effort
    }
  }
}

}  // namespace wum::ckpt
