// The checkpoint persistence protocol: atomic file writes, the
// epoch-directory + CURRENT-pointer commit scheme, and the persisted
// schemas (manifest, session state, dead letters) built on the ckpt
// codec.
//
// A checkpoint directory looks like
//
//   <dir>/CURRENT              -> committed epoch number (written last,
//                                 via temp file + rename)
//   <dir>/epoch-<N>/shard-<k>.state
//   <dir>/epoch-<N>/dead_letters.state
//   <dir>/epoch-<N>/metrics.json        (optional wum::obs snapshot)
//   <dir>/epoch-<N>/MANIFEST            (written last within the epoch)
//
// Within an epoch the MANIFEST is written last; across epochs CURRENT is
// renamed into place only after the new epoch directory is complete, and
// every write is fsynced (file before its rename, directory after) so
// the ordering holds on disk, not just in the page cache. A crash at any
// point — process or power — therefore leaves either the previous
// consistent checkpoint (CURRENT untouched, its epoch not yet removed)
// or the new one — never a half-written state a resume could read. See
// docs/checkpointing.md.

#ifndef WUM_CKPT_CHECKPOINT_H_
#define WUM_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wum/ckpt/codec.h"
#include "wum/common/result.h"
#include "wum/session/session.h"
#include "wum/stream/dead_letter.h"

namespace wum::ckpt {

/// Format version shared by every checkpoint file; bump on any schema
/// change. Readers reject other versions with a precise ParseError.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Per-file magics, so a file restored into the wrong slot fails loudly.
inline constexpr std::string_view kManifestMagic = "wumckpt.manifest";
inline constexpr std::string_view kCurrentMagic = "wumckpt.current";
inline constexpr std::string_view kShardMagic = "wumckpt.shard";
inline constexpr std::string_view kDeadLetterMagic = "wumckpt.dlq";
inline constexpr std::string_view kMiningMagic = "wumckpt.mine";

/// Whole-file read bound (checkpoint files are per-shard state, not
/// datasets; anything larger than this is corruption, not data).
inline constexpr std::size_t kMaxCheckpointFileBytes = 256u << 20;

/// Engine-level snapshot metadata. The configuration fields double as a
/// compatibility fingerprint: resume refuses a checkpoint taken under a
/// different heuristic, identity, shard count or thresholds.
struct CheckpointManifest {
  std::uint64_t epoch = 0;
  std::uint32_t num_shards = 0;
  /// Input records consumed by Offer (accepted, shed or quarantined) at
  /// the barrier — the replay skip offset for resume.
  std::uint64_t records_seen = 0;
  /// Registry heuristic name, or "custom".
  std::string heuristic;
  /// "ip" or "ip-ua" (UserIdentity).
  std::string identity;
  TimeSeconds max_session_duration = 0;
  TimeSeconds max_page_stay = 0;
  /// Caller-opaque sink state captured at the barrier (e.g. the durable
  /// session journal length websra_sessionize stores here).
  std::string sink_state;
};

void EncodeManifest(const CheckpointManifest& manifest, Encoder* encoder);
Status DecodeManifest(Decoder* decoder, CheckpointManifest* manifest);

/// Session open-state schema, shared by sessionizer checkpoint hooks and
/// the binary session format: uvarint request count, then per request a
/// uvarint page id and varint timestamp.
void EncodeSession(const Session& session, Encoder* encoder);
Status DecodeSession(Decoder* decoder, Session* session);

/// Dead-letter schema (everything a DeadLetter carries, including the
/// optional LogRecord, so a drained-and-restored queue replays exactly).
void EncodeDeadLetter(const DeadLetter& letter, Encoder* encoder);
Status DecodeDeadLetter(Decoder* decoder, DeadLetter* letter);

/// Writes `contents` to `path` atomically and durably: a sibling temp
/// file is written, flushed, fsynced and renamed over `path`, then the
/// parent directory is fsynced — readers never observe a partial file,
/// and the committed file survives power loss, not just process death
/// (on platforms without fsync, process death only).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Writes a framed file atomically: magic + version header, then one
/// CRC-framed payload per entry.
Status WriteFramedFile(const std::string& path, std::string_view magic,
                       const std::vector<std::string>& payloads);

/// Reads a framed file back, validating size bound, magic, version and
/// every frame checksum. All failures are precise Status errors.
Result<std::vector<std::string>> ReadFramedFile(const std::string& path,
                                                std::string_view magic);

/// "epoch-<epoch>".
std::string EpochDirName(std::uint64_t epoch);

/// Commits `epoch` as the checkpoint directory's current epoch by
/// atomically replacing <dir>/CURRENT.
Status CommitCurrent(const std::string& dir, std::uint64_t epoch);

/// Reads the committed epoch; NotFound when the directory holds no
/// checkpoint yet.
Result<std::uint64_t> ReadCurrent(const std::string& dir);

/// Best-effort removal of every epoch-<N> directory except
/// `keep_epoch` (called after a successful commit; failures are
/// ignored — stale epochs are garbage, not state).
void RemoveStaleEpochs(const std::string& dir, std::uint64_t keep_epoch);

}  // namespace wum::ckpt

#endif  // WUM_CKPT_CHECKPOINT_H_
