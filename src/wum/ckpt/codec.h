// Versioned, CRC32-framed binary record codec for durable state
// (checkpoints, binary session files). Two layers:
//
//  - Encoder/Decoder: primitive (de)serialization into a byte buffer —
//    fixed-width little-endian integers, LEB128 varints (zigzag for
//    signed), and length-prefixed strings. Every Decoder getter is
//    bounds-checked and returns a precise Status instead of reading past
//    the end: corrupt input can never cause UB.
//
//  - FrameWriter/FrameReader: a stream of self-delimiting frames
//        [u32 payload_len][u32 crc32(payload)][payload bytes]
//    optionally preceded by a file header (magic bytes + u32 version).
//    Reads are bounded: a frame whose declared length exceeds the
//    reader's limit is rejected before any allocation, so a garbage
//    header cannot trigger a multi-gigabyte read. Truncated frames,
//    checksum mismatches and wrong versions all surface as ParseError.
//
// See docs/checkpointing.md for the format specification.

#ifndef WUM_CKPT_CODEC_H_
#define WUM_CKPT_CODEC_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "wum/common/result.h"

namespace wum::ckpt {

/// Append-only byte-buffer builder for one frame payload.
class Encoder {
 public:
  /// One byte, verbatim.
  void PutU8(std::uint8_t value);
  /// Fixed-width little-endian (used where the width is part of the
  /// framing, e.g. lengths and checksums).
  void PutU32(std::uint32_t value);
  void PutU64(std::uint64_t value);
  /// LEB128 varint: 1 byte for values < 128, up to 10 bytes for the full
  /// 64-bit range. The default integer encoding for counters and sizes.
  void PutUvarint(std::uint64_t value);
  /// Zigzag + LEB128, so small negative values stay small.
  void PutVarint(std::int64_t value);
  /// Uvarint byte length followed by the raw bytes.
  void PutString(std::string_view value);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over one frame payload. Never reads past the
/// view; every getter returns ParseError on truncated or malformed
/// input.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<std::uint8_t> GetU8();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::uint64_t> GetUvarint();
  Result<std::int64_t> GetVarint();
  Result<std::string> GetString();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  /// ParseError when any bytes remain — catches schema drift where a
  /// payload carries more fields than the reader understands.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes the optional file header and a sequence of CRC-framed
/// payloads to a stream opened in binary mode.
class FrameWriter {
 public:
  explicit FrameWriter(std::ostream* out) : out_(out) {}

  /// Magic bytes (verbatim) followed by a little-endian u32 version.
  Status WriteHeader(std::string_view magic, std::uint32_t version);
  /// [u32 len][u32 crc32(payload)][payload].
  Status WriteFrame(std::string_view payload);

  /// Bytes written through this writer (header + frames).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream* out_;
  std::uint64_t bytes_written_ = 0;
};

/// Reads what FrameWriter writes, rejecting corruption with precise
/// errors and bounding every allocation by `max_payload`.
class FrameReader {
 public:
  /// Default per-frame payload bound; far above any legitimate frame,
  /// far below an OOM.
  static constexpr std::size_t kDefaultMaxPayload = 64u << 20;  // 64 MiB

  explicit FrameReader(std::istream* in,
                       std::size_t max_payload = kDefaultMaxPayload)
      : in_(in), max_payload_(max_payload) {}

  /// Validates the magic bytes and that the file's version equals
  /// `version` (ParseError otherwise, naming both versions).
  Status ReadHeader(std::string_view magic, std::uint32_t version);
  /// Next payload, or nullopt at a clean end of stream (EOF exactly on a
  /// frame boundary). Truncation inside a frame, a length beyond
  /// max_payload and a checksum mismatch are ParseErrors.
  Result<std::optional<std::string>> ReadFrame();

 private:
  std::istream* in_;
  std::size_t max_payload_;
};

}  // namespace wum::ckpt

#endif  // WUM_CKPT_CODEC_H_
