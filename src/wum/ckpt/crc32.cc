#include "wum/ckpt/crc32.h"

#include <array>

namespace wum::ckpt {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace wum::ckpt
