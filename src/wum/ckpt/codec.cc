#include "wum/ckpt/codec.h"

#include <istream>
#include <ostream>

#include "wum/ckpt/crc32.h"

namespace wum::ckpt {
namespace {

constexpr int kMaxVarintBytes = 10;  // ceil(64 / 7)

/// Zigzag maps signed to unsigned so small magnitudes encode short:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace

void Encoder::PutU8(std::uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void Encoder::PutU32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void Encoder::PutU64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void Encoder::PutUvarint(std::uint64_t value) {
  while (value >= 0x80u) {
    buffer_.push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  buffer_.push_back(static_cast<char>(value));
}

void Encoder::PutVarint(std::int64_t value) {
  PutUvarint(ZigzagEncode(value));
}

void Encoder::PutString(std::string_view value) {
  PutUvarint(value.size());
  buffer_.append(value);
}

Result<std::uint8_t> Decoder::GetU8() {
  if (remaining() < 1) return Status::ParseError("truncated u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> Decoder::GetU32() {
  if (remaining() < 4) return Status::ParseError("truncated u32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<std::uint64_t> Decoder::GetU64() {
  if (remaining() < 8) return Status::ParseError("truncated u64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<std::uint64_t> Decoder::GetUvarint() {
  std::uint64_t value = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= data_.size()) return Status::ParseError("truncated varint");
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    if (i == kMaxVarintBytes - 1 && byte > 0x01u) {
      return Status::ParseError("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << (7 * i);
    if ((byte & 0x80u) == 0) return value;
  }
  return Status::ParseError("varint longer than 10 bytes");
}

Result<std::int64_t> Decoder::GetVarint() {
  WUM_ASSIGN_OR_RETURN(std::uint64_t raw, GetUvarint());
  return ZigzagDecode(raw);
}

Result<std::string> Decoder::GetString() {
  WUM_ASSIGN_OR_RETURN(std::uint64_t length, GetUvarint());
  if (length > remaining()) {
    return Status::ParseError("string length " + std::to_string(length) +
                              " exceeds remaining " +
                              std::to_string(remaining()) + " bytes");
  }
  std::string value(data_.substr(pos_, static_cast<std::size_t>(length)));
  pos_ += static_cast<std::size_t>(length);
  return value;
}

Status Decoder::ExpectEnd() const {
  if (remaining() == 0) return Status::OK();
  return Status::ParseError(std::to_string(remaining()) +
                            " trailing bytes after payload");
}

Status FrameWriter::WriteHeader(std::string_view magic,
                                std::uint32_t version) {
  Encoder encoder;
  encoder.PutU32(version);
  out_->write(magic.data(), static_cast<std::streamsize>(magic.size()));
  out_->write(encoder.buffer().data(),
              static_cast<std::streamsize>(encoder.buffer().size()));
  if (!*out_) return Status::IoError("frame header write failed");
  bytes_written_ += magic.size() + encoder.buffer().size();
  return Status::OK();
}

Status FrameWriter::WriteFrame(std::string_view payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("frame payload exceeds 4 GiB");
  }
  Encoder encoder;
  encoder.PutU32(static_cast<std::uint32_t>(payload.size()));
  encoder.PutU32(Crc32(payload));
  out_->write(encoder.buffer().data(),
              static_cast<std::streamsize>(encoder.buffer().size()));
  out_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!*out_) return Status::IoError("frame write failed");
  bytes_written_ += encoder.buffer().size() + payload.size();
  return Status::OK();
}

Status FrameReader::ReadHeader(std::string_view magic, std::uint32_t version) {
  std::string header(magic.size() + 4, '\0');
  in_->read(header.data(), static_cast<std::streamsize>(header.size()));
  if (static_cast<std::size_t>(in_->gcount()) != header.size()) {
    return Status::ParseError("truncated file header");
  }
  if (std::string_view(header).substr(0, magic.size()) != magic) {
    return Status::ParseError("bad magic (not a '" + std::string(magic) +
                              "' file)");
  }
  Decoder decoder(std::string_view(header).substr(magic.size()));
  WUM_ASSIGN_OR_RETURN(std::uint32_t file_version, decoder.GetU32());
  if (file_version != version) {
    return Status::ParseError("unsupported version " +
                              std::to_string(file_version) + " (expected " +
                              std::to_string(version) + ")");
  }
  return Status::OK();
}

Result<std::optional<std::string>> FrameReader::ReadFrame() {
  std::string prefix(8, '\0');
  in_->read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  const auto got = static_cast<std::size_t>(in_->gcount());
  if (got == 0) return std::optional<std::string>(std::nullopt);
  if (got != prefix.size()) {
    return Status::ParseError("truncated frame header (" +
                              std::to_string(got) + " of 8 bytes)");
  }
  Decoder decoder(prefix);
  WUM_ASSIGN_OR_RETURN(std::uint32_t length, decoder.GetU32());
  WUM_ASSIGN_OR_RETURN(std::uint32_t expected_crc, decoder.GetU32());
  if (length > max_payload_) {
    return Status::ParseError("frame payload of " + std::to_string(length) +
                              " bytes exceeds the " +
                              std::to_string(max_payload_) + " byte limit");
  }
  std::string payload(length, '\0');
  in_->read(payload.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in_->gcount()) != length) {
    return Status::ParseError("truncated frame payload (" +
                              std::to_string(in_->gcount()) + " of " +
                              std::to_string(length) + " bytes)");
  }
  if (Crc32(payload) != expected_crc) {
    return Status::ParseError("frame checksum mismatch");
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace wum::ckpt
