#include "wum/topology/graph_io.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "wum/common/string_util.h"

namespace wum {
namespace {

constexpr std::string_view kMagic = "websra-graph";
constexpr int kVersion = 1;

}  // namespace

void WriteGraphText(const WebGraph& graph, std::ostream* out) {
  *out << kMagic << ' ' << kVersion << '\n';
  *out << "pages " << graph.num_pages() << '\n';
  for (PageId start : graph.start_pages()) {
    *out << "start " << start << '\n';
  }
  for (std::size_t p = 0; p < graph.num_pages(); ++p) {
    for (PageId to : graph.OutLinks(static_cast<PageId>(p))) {
      *out << "edge " << p << ' ' << to << '\n';
    }
  }
}

Result<WebGraph> ReadGraphText(std::istream* in) {
  std::string line;
  std::optional<WebGraph> graph;
  bool saw_magic = false;
  int line_number = 0;
  auto error = [&](const std::string& what) {
    return Status::ParseError("graph line " + std::to_string(line_number) +
                              ": " + what);
  };
  while (std::getline(*in, line)) {
    ++line_number;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text.front() == '#') continue;
    std::vector<std::string_view> tokens;
    for (std::string_view token : SplitString(text, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }
    if (!saw_magic) {
      if (tokens.size() != 2 || tokens[0] != kMagic) {
        return error("expected '" + std::string(kMagic) + " <version>'");
      }
      auto version = ParseInt64(tokens[1]);
      if (!version.ok() || *version != kVersion) {
        return error("unsupported version");
      }
      saw_magic = true;
      continue;
    }
    if (tokens[0] == "pages") {
      if (graph.has_value()) return error("duplicate 'pages' line");
      if (tokens.size() != 2) return error("expected 'pages <N>'");
      WUM_ASSIGN_OR_RETURN(std::uint64_t n, ParseUint64(tokens[1]));
      graph.emplace(static_cast<std::size_t>(n));
      continue;
    }
    if (!graph.has_value()) return error("'pages' must precede content lines");
    if (tokens[0] == "start") {
      if (tokens.size() != 2) return error("expected 'start <id>'");
      WUM_ASSIGN_OR_RETURN(std::uint64_t id, ParseUint64(tokens[1]));
      if (id >= graph->num_pages()) return error("start page out of range");
      graph->MarkStartPage(static_cast<PageId>(id));
      continue;
    }
    if (tokens[0] == "edge") {
      if (tokens.size() != 3) return error("expected 'edge <from> <to>'");
      WUM_ASSIGN_OR_RETURN(std::uint64_t from, ParseUint64(tokens[1]));
      WUM_ASSIGN_OR_RETURN(std::uint64_t to, ParseUint64(tokens[2]));
      if (from >= graph->num_pages() || to >= graph->num_pages()) {
        return error("edge endpoint out of range");
      }
      if (!graph->AddLink(static_cast<PageId>(from), static_cast<PageId>(to))) {
        return error("duplicate edge");
      }
      continue;
    }
    return error("unknown directive '" + std::string(tokens[0]) + "'");
  }
  if (!saw_magic) return Status::ParseError("empty graph stream");
  if (!graph.has_value()) return Status::ParseError("missing 'pages' line");
  return std::move(*graph);
}

Status WriteGraphFile(const WebGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteGraphText(graph, &out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<WebGraph> ReadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadGraphText(&in);
}

std::string GraphToDot(const WebGraph& graph, const std::string& name) {
  std::ostringstream oss;
  oss << "digraph " << name << " {\n";
  for (PageId start : graph.start_pages()) {
    oss << "  p" << start << " [shape=box, style=filled];\n";
  }
  for (std::size_t p = 0; p < graph.num_pages(); ++p) {
    for (PageId to : graph.OutLinks(static_cast<PageId>(p))) {
      oss << "  p" << p << " -> p" << to << ";\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace wum
