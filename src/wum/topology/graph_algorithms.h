// Graph utilities over WebGraph: reachability, induced subgraphs,
// dead-end detection, BFS distances and degree statistics.

#ifndef WUM_TOPOLOGY_GRAPH_ALGORITHMS_H_
#define WUM_TOPOLOGY_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "wum/common/histogram.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// reachable[p] == true iff p is reachable from some page in `sources`
/// by following hyperlinks forward (sources themselves are reachable).
std::vector<bool> ReachablePages(const WebGraph& graph,
                                 const std::vector<PageId>& sources);

/// Result of InducedSubgraph: the subgraph plus the id mappings.
struct InducedSubgraphResult {
  WebGraph subgraph;
  /// subgraph id -> original id, in increasing original-id order.
  std::vector<PageId> to_original;
  /// original id -> subgraph id, kInvalidPage when absent.
  std::vector<PageId> to_subgraph;
};

/// Subgraph induced by `pages` (duplicates ignored). Edges and start-page
/// marks are preserved among the retained pages. This is the "remove
/// vertices not appearing in the candidate session" preprocessing step of
/// Smart-SRA phase 2.
InducedSubgraphResult InducedSubgraph(const WebGraph& graph,
                                      const std::vector<PageId>& pages);

/// Pages with no out-links (navigation dead ends).
std::vector<PageId> DeadEndPages(const WebGraph& graph);

/// BFS hop distances from `source` (-1 for unreachable pages).
std::vector<std::int64_t> BfsDistances(const WebGraph& graph, PageId source);

/// Degree distribution summary for reporting.
struct DegreeStats {
  RunningStats out_degree;
  RunningStats in_degree;
  std::size_t dead_ends = 0;        // out-degree 0
  std::size_t unreferenced = 0;     // in-degree 0
};

DegreeStats ComputeDegreeStats(const WebGraph& graph);

}  // namespace wum

#endif  // WUM_TOPOLOGY_GRAPH_ALGORITHMS_H_
