// Random web-site topology generators.
//
// The paper evaluates on synthetic topologies with a fixed page count and
// mean out-degree (Table 5: 300 pages, mean out-degree 15, sizes taken from
// the Berkeley "How much information" study). SiteGenerator reproduces
// that uniform model; PowerLawSiteGenerator implements a preferential-
// attachment variant matching the web-graph literature the paper cites
// ([1] Broder et al., [8] Cooper & Frieze, [10] Kumar et al.) and is used
// by the topology ablation bench.

#ifndef WUM_TOPOLOGY_SITE_GENERATOR_H_
#define WUM_TOPOLOGY_SITE_GENERATOR_H_

#include <cstdint>

#include "wum/common/random.h"
#include "wum/common/result.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Parameters shared by both generators.
struct SiteGeneratorOptions {
  /// Number of pages (paper default: 300).
  std::size_t num_pages = 300;
  /// Mean hyperlinks per page (paper default: 15).
  double mean_out_degree = 15.0;
  /// Fraction of pages marked as session entry pages. The paper keeps the
  /// exact value unspecified ("not all of the pages are likely to take the
  /// first hit"); 5% is this repo's documented default.
  double start_page_fraction = 0.05;
  /// Lower bound on the number of start pages regardless of the fraction.
  std::size_t min_start_pages = 1;
  /// When true, pages unreachable from every start page receive one
  /// incoming link from the reachable region, so a simulated agent can in
  /// principle visit the whole site.
  bool ensure_reachable_from_start_pages = true;
  /// Children per page in the hierarchical model's navigation tree.
  std::size_t hierarchy_branching_factor = 4;
  /// Probability of a child -> parent "up" link in the hierarchical
  /// model (breadcrumb navigation).
  double hierarchy_up_link_probability = 0.8;
};

/// Validates option ranges (page count > 0, degree fits the page count,
/// fraction in [0, 1], ...).
Status ValidateSiteGeneratorOptions(const SiteGeneratorOptions& options);

/// Uniform random topology (the paper's model): edges are distinct
/// uniformly random ordered pairs without self-loops; start pages are a
/// uniform sample.
Result<WebGraph> GenerateUniformSite(const SiteGeneratorOptions& options,
                                     Rng* rng);

/// Preferential-attachment topology: link targets are drawn with
/// probability proportional to (in-degree + 1), producing a heavy-tailed
/// in-degree distribution like the real web.
Result<WebGraph> GeneratePowerLawSite(const SiteGeneratorOptions& options,
                                      Rng* rng);

/// Hierarchical topology: pages form a navigation tree rooted at page 0
/// (the site index) with `hierarchy_branching_factor` children per node,
/// probabilistic child -> parent breadcrumb links, and the remaining
/// edge budget spent on uniform cross links. Page 0 is always a start
/// page; further start pages are sampled as in the other models.
Result<WebGraph> GenerateHierarchicalSite(const SiteGeneratorOptions& options,
                                          Rng* rng);

/// The 6-page topology of the paper's Figure 1 (pages P1, P13, P20, P23,
/// P34, P49 mapped to ids 0..5 in that order), used by the worked-example
/// golden tests and the table-reproduction bench.
///
/// Edges (derived from the Link[] tests in Tables 2 and 4): P1->P13,
/// P1->P20, P13->P34, P13->P49, P20->P23, P34->P23, P49->P23.
/// Start pages: P1 and P49 (per the Figure 3 discussion).
WebGraph MakeFigure1Topology();

/// Page-name helper for the Figure 1 topology: id -> "P1", "P13", ...
std::string Figure1PageName(PageId id);

}  // namespace wum

#endif  // WUM_TOPOLOGY_SITE_GENERATOR_H_
