#include "wum/topology/web_graph.h"

#include <algorithm>
#include <cassert>

namespace wum {

WebGraph::WebGraph(std::size_t num_pages)
    : out_links_(num_pages),
      in_links_(num_pages),
      is_start_page_(num_pages, false) {
  if (num_pages > 0 && num_pages <= kAdjacencyMatrixMaxPages) {
    adjacency_bits_.assign((num_pages * num_pages + 63) / 64, 0);
  }
}

bool WebGraph::AddLink(PageId from, PageId to) {
  assert(IsValidPage(from) && IsValidPage(to));
  auto [it, inserted] = edge_set_.insert(MakeEdgeKey(from, to));
  (void)it;
  if (!inserted) return false;
  if (!adjacency_bits_.empty()) {
    const std::size_t bit =
        static_cast<std::size_t>(from) * num_pages() + to;
    adjacency_bits_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  out_links_[from].push_back(to);
  in_links_[to].push_back(from);
  ++num_edges_;
  return true;
}

bool WebGraph::HasLinkSlow(PageId from, PageId to) const {
  if (!IsValidPage(from) || !IsValidPage(to)) return false;
  return edge_set_.contains(MakeEdgeKey(from, to));
}

double WebGraph::MeanOutDegree() const {
  if (num_pages() == 0) return 0.0;
  return static_cast<double>(num_edges_) / static_cast<double>(num_pages());
}

void WebGraph::MarkStartPage(PageId page) {
  assert(IsValidPage(page));
  if (is_start_page_[page]) return;
  is_start_page_[page] = true;
  start_pages_.insert(
      std::lower_bound(start_pages_.begin(), start_pages_.end(), page), page);
}

bool WebGraph::IsStartPage(PageId page) const {
  return IsValidPage(page) && is_start_page_[page];
}

bool operator==(const WebGraph& a, const WebGraph& b) {
  if (a.num_pages() != b.num_pages() || a.num_edges() != b.num_edges() ||
      a.start_pages_ != b.start_pages_) {
    return false;
  }
  // Edge sets must match irrespective of adjacency-list insertion order.
  for (const auto& key : a.edge_set_) {
    if (!b.edge_set_.contains(key)) return false;
  }
  return true;
}

}  // namespace wum
