// Serialization of WebGraph: a line-oriented text format for persistence
// and Graphviz DOT export for visualization.

#ifndef WUM_TOPOLOGY_GRAPH_IO_H_
#define WUM_TOPOLOGY_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "wum/common/result.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Text format:
///   websra-graph 1
///   pages <N>
///   start <id>            (one line per start page)
///   edge <from> <to>      (one line per hyperlink)
/// Blank lines and lines beginning with '#' are ignored on input.
void WriteGraphText(const WebGraph& graph, std::ostream* out);

/// Parses the text format; rejects malformed headers, out-of-range ids and
/// duplicate edges.
Result<WebGraph> ReadGraphText(std::istream* in);

/// Convenience file wrappers.
Status WriteGraphFile(const WebGraph& graph, const std::string& path);
Result<WebGraph> ReadGraphFile(const std::string& path);

/// Graphviz DOT representation (start pages drawn as filled boxes).
std::string GraphToDot(const WebGraph& graph, const std::string& name = "site");

}  // namespace wum

#endif  // WUM_TOPOLOGY_GRAPH_IO_H_
