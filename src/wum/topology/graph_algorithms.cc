#include "wum/topology/graph_algorithms.h"

#include <algorithm>
#include <queue>

namespace wum {

std::vector<bool> ReachablePages(const WebGraph& graph,
                                 const std::vector<PageId>& sources) {
  std::vector<bool> reachable(graph.num_pages(), false);
  std::queue<PageId> frontier;
  for (PageId source : sources) {
    if (graph.IsValidPage(source) && !reachable[source]) {
      reachable[source] = true;
      frontier.push(source);
    }
  }
  while (!frontier.empty()) {
    PageId page = frontier.front();
    frontier.pop();
    for (PageId next : graph.OutLinks(page)) {
      if (!reachable[next]) {
        reachable[next] = true;
        frontier.push(next);
      }
    }
  }
  return reachable;
}

InducedSubgraphResult InducedSubgraph(const WebGraph& graph,
                                      const std::vector<PageId>& pages) {
  std::vector<bool> keep(graph.num_pages(), false);
  for (PageId page : pages) {
    if (graph.IsValidPage(page)) keep[page] = true;
  }
  InducedSubgraphResult result{WebGraph(0), {}, {}};
  result.to_subgraph.assign(graph.num_pages(), kInvalidPage);
  for (std::size_t p = 0; p < graph.num_pages(); ++p) {
    if (keep[p]) {
      result.to_subgraph[p] = static_cast<PageId>(result.to_original.size());
      result.to_original.push_back(static_cast<PageId>(p));
    }
  }
  result.subgraph = WebGraph(result.to_original.size());
  for (PageId original : result.to_original) {
    PageId mapped_from = result.to_subgraph[original];
    for (PageId target : graph.OutLinks(original)) {
      PageId mapped_to = result.to_subgraph[target];
      if (mapped_to != kInvalidPage) {
        result.subgraph.AddLink(mapped_from, mapped_to);
      }
    }
    if (graph.IsStartPage(original)) {
      result.subgraph.MarkStartPage(mapped_from);
    }
  }
  return result;
}

std::vector<PageId> DeadEndPages(const WebGraph& graph) {
  std::vector<PageId> dead_ends;
  for (std::size_t p = 0; p < graph.num_pages(); ++p) {
    if (graph.OutDegree(static_cast<PageId>(p)) == 0) {
      dead_ends.push_back(static_cast<PageId>(p));
    }
  }
  return dead_ends;
}

std::vector<std::int64_t> BfsDistances(const WebGraph& graph, PageId source) {
  std::vector<std::int64_t> distance(graph.num_pages(), -1);
  if (!graph.IsValidPage(source)) return distance;
  std::queue<PageId> frontier;
  distance[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    PageId page = frontier.front();
    frontier.pop();
    for (PageId next : graph.OutLinks(page)) {
      if (distance[next] < 0) {
        distance[next] = distance[page] + 1;
        frontier.push(next);
      }
    }
  }
  return distance;
}

DegreeStats ComputeDegreeStats(const WebGraph& graph) {
  DegreeStats stats;
  for (std::size_t p = 0; p < graph.num_pages(); ++p) {
    auto page = static_cast<PageId>(p);
    stats.out_degree.Add(static_cast<double>(graph.OutDegree(page)));
    stats.in_degree.Add(static_cast<double>(graph.InDegree(page)));
    if (graph.OutDegree(page) == 0) ++stats.dead_ends;
    if (graph.InDegree(page) == 0) ++stats.unreferenced;
  }
  return stats;
}

}  // namespace wum
