#include "wum/topology/site_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "wum/topology/graph_algorithms.h"

namespace wum {
namespace {

// Number of start pages implied by the options.
std::size_t StartPageCount(const SiteGeneratorOptions& options) {
  auto by_fraction = static_cast<std::size_t>(std::llround(
      options.start_page_fraction * static_cast<double>(options.num_pages)));
  std::size_t count = std::max(by_fraction, options.min_start_pages);
  return std::min(count, options.num_pages);
}

void MarkRandomStartPages(const SiteGeneratorOptions& options, Rng* rng,
                          WebGraph* graph) {
  for (std::size_t index :
       rng->SampleWithoutReplacement(options.num_pages, StartPageCount(options))) {
    graph->MarkStartPage(static_cast<PageId>(index));
  }
}

// Attaches every page not reachable from the start-page set to the
// reachable region with one extra link, repeating until the whole site is
// reachable (each pass strictly grows the reachable set).
void EnsureReachability(Rng* rng, WebGraph* graph) {
  const std::size_t n = graph->num_pages();
  while (true) {
    std::vector<bool> reachable =
        ReachablePages(*graph, graph->start_pages());
    std::vector<PageId> reachable_list;
    std::vector<PageId> unreachable_list;
    for (std::size_t p = 0; p < n; ++p) {
      (reachable[p] ? reachable_list : unreachable_list)
          .push_back(static_cast<PageId>(p));
    }
    if (unreachable_list.empty()) return;
    for (PageId orphan : unreachable_list) {
      PageId from = reachable_list[static_cast<std::size_t>(
          rng->NextBounded(reachable_list.size()))];
      if (from == orphan) continue;  // retried on the next pass
      graph->AddLink(from, orphan);
    }
  }
}

}  // namespace

Status ValidateSiteGeneratorOptions(const SiteGeneratorOptions& options) {
  if (options.num_pages == 0) {
    return Status::InvalidArgument("num_pages must be positive");
  }
  if (options.mean_out_degree < 0.0) {
    return Status::InvalidArgument("mean_out_degree must be non-negative");
  }
  if (options.mean_out_degree >
      static_cast<double>(options.num_pages - 1)) {
    return Status::InvalidArgument(
        "mean_out_degree exceeds num_pages - 1; the graph cannot host that "
        "many distinct links per page");
  }
  if (options.start_page_fraction < 0.0 || options.start_page_fraction > 1.0) {
    return Status::InvalidArgument("start_page_fraction must be in [0, 1]");
  }
  if (options.min_start_pages == 0) {
    return Status::InvalidArgument(
        "min_start_pages must be >= 1 (sessions need an entry page)");
  }
  if (options.min_start_pages > options.num_pages) {
    return Status::InvalidArgument("min_start_pages exceeds num_pages");
  }
  return Status::OK();
}

Result<WebGraph> GenerateUniformSite(const SiteGeneratorOptions& options,
                                     Rng* rng) {
  WUM_RETURN_NOT_OK(ValidateSiteGeneratorOptions(options));
  WebGraph graph(options.num_pages);
  MarkRandomStartPages(options, rng, &graph);

  const auto target_edges = static_cast<std::size_t>(std::llround(
      options.mean_out_degree * static_cast<double>(options.num_pages)));
  const std::size_t n = options.num_pages;
  if (n > 1) {
    std::size_t added = 0;
    // Rejection loop; capacity n*(n-1) far exceeds the target for the
    // paper's density (15/299), so collisions are rare.
    std::size_t attempts = 0;
    const std::size_t max_attempts = target_edges * 20 + 1000;
    while (added < target_edges && attempts < max_attempts) {
      ++attempts;
      auto from = static_cast<PageId>(rng->NextBounded(n));
      auto to = static_cast<PageId>(rng->NextBounded(n));
      if (from == to) continue;
      if (graph.AddLink(from, to)) ++added;
    }
  }
  if (options.ensure_reachable_from_start_pages) {
    EnsureReachability(rng, &graph);
  }
  return graph;
}

Result<WebGraph> GeneratePowerLawSite(const SiteGeneratorOptions& options,
                                      Rng* rng) {
  WUM_RETURN_NOT_OK(ValidateSiteGeneratorOptions(options));
  WebGraph graph(options.num_pages);
  MarkRandomStartPages(options, rng, &graph);

  const std::size_t n = options.num_pages;
  const auto target_edges = static_cast<std::size_t>(std::llround(
      options.mean_out_degree * static_cast<double>(n)));
  if (n > 1) {
    // Repeated-endpoint list: each inserted edge appends its target, so
    // sampling a uniform element of `attachment` is proportional to
    // in-degree + 1 (every page is seeded once).
    std::vector<PageId> attachment;
    attachment.reserve(n + target_edges);
    for (std::size_t p = 0; p < n; ++p) {
      attachment.push_back(static_cast<PageId>(p));
    }
    std::size_t added = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = target_edges * 40 + 1000;
    while (added < target_edges && attempts < max_attempts) {
      ++attempts;
      auto from = static_cast<PageId>(rng->NextBounded(n));
      PageId to = attachment[static_cast<std::size_t>(
          rng->NextBounded(attachment.size()))];
      if (from == to) continue;
      if (graph.AddLink(from, to)) {
        attachment.push_back(to);
        ++added;
      }
    }
  }
  if (options.ensure_reachable_from_start_pages) {
    EnsureReachability(rng, &graph);
  }
  return graph;
}

Result<WebGraph> GenerateHierarchicalSite(const SiteGeneratorOptions& options,
                                          Rng* rng) {
  WUM_RETURN_NOT_OK(ValidateSiteGeneratorOptions(options));
  if (options.hierarchy_branching_factor == 0) {
    return Status::InvalidArgument(
        "hierarchy_branching_factor must be positive");
  }
  if (options.hierarchy_up_link_probability < 0.0 ||
      options.hierarchy_up_link_probability > 1.0) {
    return Status::InvalidArgument(
        "hierarchy_up_link_probability must be in [0, 1]");
  }
  WebGraph graph(options.num_pages);
  const std::size_t n = options.num_pages;
  const std::size_t branching = options.hierarchy_branching_factor;

  // Navigation tree: page p's children are p*b + 1 .. p*b + b.
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t c = 1; c <= branching; ++c) {
      const std::size_t child = p * branching + c;
      if (child >= n) break;
      graph.AddLink(static_cast<PageId>(p), static_cast<PageId>(child));
      if (rng->Bernoulli(options.hierarchy_up_link_probability)) {
        graph.AddLink(static_cast<PageId>(child), static_cast<PageId>(p));
      }
    }
  }

  // Spend the remaining edge budget on uniform cross links.
  const auto target_edges = static_cast<std::size_t>(std::llround(
      options.mean_out_degree * static_cast<double>(n)));
  if (n > 1) {
    std::size_t attempts = 0;
    const std::size_t max_attempts = target_edges * 20 + 1000;
    while (graph.num_edges() < target_edges && attempts < max_attempts) {
      ++attempts;
      auto from = static_cast<PageId>(rng->NextBounded(n));
      auto to = static_cast<PageId>(rng->NextBounded(n));
      if (from == to) continue;
      graph.AddLink(from, to);
    }
  }

  graph.MarkStartPage(0);  // the site index
  MarkRandomStartPages(options, rng, &graph);
  if (options.ensure_reachable_from_start_pages) {
    EnsureReachability(rng, &graph);
  }
  return graph;
}

WebGraph MakeFigure1Topology() {
  // Page ids: 0=P1, 1=P13, 2=P20, 3=P23, 4=P34, 5=P49.
  WebGraph graph(6);
  graph.AddLink(0, 1);  // P1  -> P13
  graph.AddLink(0, 2);  // P1  -> P20
  graph.AddLink(1, 4);  // P13 -> P34
  graph.AddLink(1, 5);  // P13 -> P49
  graph.AddLink(2, 3);  // P20 -> P23
  graph.AddLink(4, 3);  // P34 -> P23
  graph.AddLink(5, 3);  // P49 -> P23
  graph.MarkStartPage(0);  // P1
  graph.MarkStartPage(5);  // P49
  return graph;
}

std::string Figure1PageName(PageId id) {
  switch (id) {
    case 0:
      return "P1";
    case 1:
      return "P13";
    case 2:
      return "P20";
    case 3:
      return "P23";
    case 4:
      return "P34";
    case 5:
      return "P49";
    default:
      return "P?" + std::to_string(id);
  }
}

}  // namespace wum
