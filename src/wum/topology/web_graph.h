// WebGraph: the static site topology the paper's heuristics consult.
// Directed graph over page ids with O(1) average edge membership tests,
// adjacency lists in both directions, and a designated set of session
// start pages ("entry pages" such as index.html).

#ifndef WUM_TOPOLOGY_WEB_GRAPH_H_
#define WUM_TOPOLOGY_WEB_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "wum/common/result.h"

namespace wum {

/// Identifier of a web page (dense, 0-based).
using PageId = std::uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// Directed hyperlink graph of a static web site.
///
/// Pages are dense ids [0, num_pages). Edges are hyperlinks
/// (source page contains a link to target page). Self-loops are allowed by
/// the representation but never produced by the generators. A non-empty
/// subset of pages is marked as *start pages*: plausible session entry
/// points (directly typed / externally linked), per §4 of the paper.
class WebGraph {
 public:
  /// Creates a graph with `num_pages` pages and no edges.
  explicit WebGraph(std::size_t num_pages);

  WebGraph(const WebGraph&) = default;
  WebGraph& operator=(const WebGraph&) = default;
  WebGraph(WebGraph&&) noexcept = default;
  WebGraph& operator=(WebGraph&&) noexcept = default;

  std::size_t num_pages() const { return out_links_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  bool IsValidPage(PageId page) const { return page < num_pages(); }

  /// Adds the hyperlink from -> to. Returns false (and changes nothing) if
  /// the edge already exists. Both endpoints must be valid pages.
  bool AddLink(PageId from, PageId to);

  /// True iff page `from` contains a hyperlink to page `to`
  /// (the paper's Link[from, to] = 1). This is the inner-loop query of
  /// every topology-aware heuristic, so graphs up to
  /// `kAdjacencyMatrixMaxPages` answer it from a bit-matrix (one load
  /// plus a mask) instead of the edge hash set.
  bool HasLink(PageId from, PageId to) const {
    if (!adjacency_bits_.empty()) {
      if (from >= num_pages() || to >= num_pages()) return false;
      const std::size_t bit =
          static_cast<std::size_t>(from) * num_pages() + to;
      return (adjacency_bits_[bit >> 6] >> (bit & 63)) & 1;
    }
    return HasLinkSlow(from, to);
  }

  /// Largest page count for which the O(1) adjacency bit-matrix is kept
  /// (4096 pages -> 2 MiB; beyond that only the edge hash set is used).
  static constexpr std::size_t kAdjacencyMatrixMaxPages = 4096;

  /// Pages linked *from* `page`, in insertion order.
  const std::vector<PageId>& OutLinks(PageId page) const {
    return out_links_[page];
  }
  /// Pages linking *to* `page`, in insertion order.
  const std::vector<PageId>& InLinks(PageId page) const {
    return in_links_[page];
  }

  std::size_t OutDegree(PageId page) const { return out_links_[page].size(); }
  std::size_t InDegree(PageId page) const { return in_links_[page].size(); }

  /// Mean out-degree over all pages (0 for an empty graph).
  double MeanOutDegree() const;

  /// Marks `page` as a session start page (idempotent).
  void MarkStartPage(PageId page);
  bool IsStartPage(PageId page) const;
  /// Start pages in increasing id order.
  const std::vector<PageId>& start_pages() const { return start_pages_; }

  friend bool operator==(const WebGraph& a, const WebGraph& b);

 private:
  struct EdgeKey {
    std::uint64_t packed;
    friend bool operator==(EdgeKey a, EdgeKey b) { return a.packed == b.packed; }
  };
  struct EdgeKeyHash {
    std::size_t operator()(EdgeKey key) const {
      // SplitMix64-style mix of the packed (from, to) pair.
      std::uint64_t z = key.packed + 0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  static EdgeKey MakeEdgeKey(PageId from, PageId to) {
    return EdgeKey{(static_cast<std::uint64_t>(from) << 32) | to};
  }

  bool HasLinkSlow(PageId from, PageId to) const;

  std::vector<std::vector<PageId>> out_links_;
  std::vector<std::vector<PageId>> in_links_;
  std::unordered_set<EdgeKey, EdgeKeyHash> edge_set_;
  // num_pages^2 bits, row-major by source page; empty for large graphs.
  std::vector<std::uint64_t> adjacency_bits_;
  std::vector<PageId> start_pages_;
  std::vector<bool> is_start_page_;
  std::size_t num_edges_ = 0;
};

}  // namespace wum

#endif  // WUM_TOPOLOGY_WEB_GRAPH_H_
