// The unified ingest surface: every way bytes enter the system — a
// memory-mapped file handed to the CLI, a TCP socket feeding the
// websra_serve daemon — is a ByteSource producing line-aligned chunks
// for ClfParser::ParseChunk. File and socket ingest are first-class
// peers of the same IngestDriver (see wum/ingest/driver.h) instead of
// two hand-rolled loops.
//
// Chunk contract (shared with ChunkReader): every chunk ends on a '\n'
// boundary except possibly the final chunk of the stream, whose trailing
// unterminated line arrives whole. Feeding every chunk of a source to
// ParseChunk therefore reproduces the stream's lines exactly — a
// partial line buffered mid-stream is *carried*, never served early and
// never rejected as malformed.

#ifndef WUM_INGEST_BYTE_SOURCE_H_
#define WUM_INGEST_BYTE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wum/clf/chunk_reader.h"
#include "wum/common/result.h"

namespace wum::ingest {

/// Pull interface for line-aligned byte chunks.
///
/// Next() returns the next chunk, or nullopt when no chunk is available
/// *right now*. A file source always has a chunk until end of file, so
/// nullopt means the stream is over; a socket-fed source returns nullopt
/// whenever the buffered bytes hold no complete line yet — the stream is
/// only over when exhausted() is also true. The returned view stays
/// valid until the next call to Next() on the same source.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Next line-aligned chunk, or nullopt when none is available.
  virtual Result<std::optional<std::string_view>> Next() = 0;

  /// True once the stream has ended AND every buffered byte has been
  /// served: Next() will never produce another chunk.
  virtual bool exhausted() const = 0;
};

/// File-backed ByteSource: a thin adapter over ChunkReader (mmap when
/// the platform allows it, buffered reads otherwise). Next() == nullopt
/// means end of file.
class FileSource final : public ByteSource {
 public:
  static Result<FileSource> Open(
      const std::string& path,
      std::size_t chunk_bytes = ChunkReader::kDefaultChunkBytes);

  FileSource(FileSource&&) noexcept = default;
  FileSource& operator=(FileSource&&) noexcept = default;

  Result<std::optional<std::string_view>> Next() override;
  bool exhausted() const override { return exhausted_; }

  /// True when the underlying file is served from a memory mapping.
  bool memory_mapped() const { return reader_.memory_mapped(); }

 private:
  explicit FileSource(ChunkReader reader) : reader_(std::move(reader)) {}

  ChunkReader reader_;
  bool exhausted_ = false;
};

/// Push-fed ByteSource for byte streams that arrive in arbitrary pieces
/// (TCP reads, pipes): Append() raw bytes as they arrive, Close() at end
/// of stream, pull line-aligned chunks with Next().
///
/// The partial-line carry round-trips across Next() calls: bytes after
/// the last '\n' stay buffered — Next() returns nullopt rather than
/// serving (and having the parser reject) half a line — until a later
/// Append completes the line or Close() marks the stream over, at which
/// point the tail is served whole as the final (unterminated) chunk,
/// exactly like the last line of a file without a trailing newline.
class LineBuffer final : public ByteSource {
 public:
  /// Bound on one line's length — a producer that streams forever
  /// without a newline is buffering abuse, not data. Generous: real CLF
  /// lines are a few hundred bytes.
  static constexpr std::size_t kDefaultMaxLineBytes = 1u << 20;

  explicit LineBuffer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Feeds raw stream bytes. Fails (leaving the buffer intact for
  /// diagnostics) when the partial line under construction exceeds
  /// max_line_bytes; the caller should drop the producer.
  Status Append(std::string_view bytes);

  /// Marks end of stream: no more Append calls; the buffered tail (if
  /// any) becomes the final chunk of the next Next() call.
  void Close() { closed_ = true; }

  bool closed() const { return closed_; }

  Result<std::optional<std::string_view>> Next() override;
  bool exhausted() const override { return closed_ && pending_.empty(); }

  /// Bytes served through Next() so far — after a pump this is the
  /// byte offset up to which the stream has been consumed (the
  /// per-connection replay offset websra_serve checkpoints).
  std::uint64_t consumed_bytes() const { return consumed_bytes_; }

  /// Bytes appended but not yet served (complete lines awaiting Next()
  /// plus the partial-line carry).
  std::size_t buffered_bytes() const { return pending_.size(); }

  /// Cumulative bytes refused by Append (oversize-line rejections).
  /// They were read off the wire and so still count against a
  /// producer's ingest quota even though they never became a chunk.
  std::uint64_t rejected_bytes() const { return rejected_bytes_; }

  /// Discards the partial-line carry (bytes after the last '\n') and
  /// returns how many were dropped. The dropped bytes do NOT count as
  /// consumed: a replay offset must always land on a line boundary, so
  /// the offset stays at the last complete line and a resuming client
  /// re-sends the shed line whole. Callers must drop the producer after
  /// shedding — its next bytes would be the unframeable remainder of
  /// the line whose head was just discarded.
  std::size_t ShedTail();

 private:
  std::size_t max_line_bytes_;
  std::string pending_;  // unserved bytes; [0, complete_) ends on '\n'
  std::string serving_;  // backing store of the view Next() returned
  std::size_t complete_ = 0;
  std::uint64_t consumed_bytes_ = 0;
  std::uint64_t rejected_bytes_ = 0;
  bool closed_ = false;
};

}  // namespace wum::ingest

#endif  // WUM_INGEST_BYTE_SOURCE_H_
