// IngestDriver: the one parse→batch→offer→checkpoint loop.
//
// Both front ends — websra_sessionize reading a file and websra_serve
// reading sockets — feed a sharded StreamEngine through this driver, so
// batching and checkpoint cadence behave identically no matter how the
// bytes arrived. The cadence logic is deliberately exact: offers are
// chopped at every checkpoint_every_records boundary so a checkpoint's
// records_seen always lands on a cadence multiple, keeping resume
// offsets stable across front ends and batch sizes.

#ifndef WUM_INGEST_DRIVER_H_
#define WUM_INGEST_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wum/clf/clf_parser.h"
#include "wum/common/result.h"
#include "wum/ingest/byte_source.h"
#include "wum/stream/engine.h"

namespace wum::ingest {

struct IngestOptions {
  /// Max records per StreamEngine::OfferBatch call. The engine copies a
  /// batch per shard per call, so bigger batches amortize the hand-off;
  /// 2048 is the tuned default from the zero-copy ingest work.
  std::size_t batch_records = 2048;

  /// Durable checkpoint directory; empty disables checkpointing.
  std::string checkpoint_dir;

  /// Take a checkpoint every N offered records (0 = only on explicit
  /// CheckpointNow). Requires checkpoint_dir.
  std::uint64_t checkpoint_every_records = 0;

  /// Captures caller sink state (e.g. committed journal length) at each
  /// checkpoint barrier; stored in the manifest.
  StreamEngine::SinkStateFn sink_state;

  Status Validate() const;
};

/// Owns the offer loop in front of a StreamEngine. Producer-thread only,
/// like the engine itself.
class IngestDriver {
 public:
  /// `engine` must outlive the driver.
  static Result<IngestDriver> Create(StreamEngine* engine,
                                     IngestOptions options);

  /// Drains `source` as far as it will go right now: pulls chunks,
  /// parses each with `parser`, offers the records. Returns once the
  /// source has no chunk available (end of file, or a socket buffer
  /// waiting on more bytes). Checkpoint cadence applies throughout.
  Status Pump(ByteSource* source, ClfParser* parser);

  /// Offers already-parsed records with batch chopping and checkpoint
  /// cadence. The refs need only stay valid for the duration of the
  /// call.
  Status OfferRefs(std::span<const LogRecordRef> refs);

  /// Takes a checkpoint immediately (admin CHECKPOINT command, shutdown
  /// paths). Fails when no checkpoint_dir is configured.
  Status CheckpointNow();

  bool checkpointing() const { return !options_.checkpoint_dir.empty(); }

  /// Records passed to the engine by this driver (replay-skipped records
  /// included — this mirrors StreamEngine::records_seen growth).
  std::uint64_t records_offered() const { return records_offered_; }

  /// Checkpoints taken (cadence plus explicit).
  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  IngestDriver(StreamEngine* engine, IngestOptions options)
      : engine_(engine), options_(std::move(options)) {}

  StreamEngine* engine_;
  IngestOptions options_;
  std::uint64_t records_offered_ = 0;
  std::uint64_t checkpoints_taken_ = 0;
  std::vector<LogRecordRef> refs_;  // Pump's reusable parse buffer.
};

}  // namespace wum::ingest

#endif  // WUM_INGEST_DRIVER_H_
