#include "wum/ingest/byte_source.h"

#include <algorithm>
#include <string>
#include <utility>

namespace wum::ingest {

Result<FileSource> FileSource::Open(const std::string& path,
                                    std::size_t chunk_bytes) {
  WUM_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(path, chunk_bytes));
  return FileSource(std::move(reader));
}

Result<std::optional<std::string_view>> FileSource::Next() {
  std::optional<std::string_view> chunk = reader_.Next();
  if (!chunk.has_value()) exhausted_ = true;
  return chunk;
}

Status LineBuffer::Append(std::string_view bytes) {
  if (closed_) {
    return Status::FailedPrecondition("LineBuffer: Append after Close");
  }
  const std::size_t old_size = pending_.size();
  const std::size_t old_complete = complete_;
  pending_.append(bytes.data(), bytes.size());
  const std::size_t last_newline = pending_.find_last_of('\n');
  if (last_newline != std::string::npos && last_newline + 1 > complete_) {
    complete_ = last_newline + 1;
  }
  const std::size_t partial = pending_.size() - complete_;
  if (partial > max_line_bytes_) {
    // Roll back the append so consumed_bytes() stays an honest offset of
    // what was actually accepted from the stream.
    pending_.resize(old_size);
    complete_ = old_complete;
    rejected_bytes_ += bytes.size();
    return Status::InvalidArgument(
        "LineBuffer: line exceeds max_line_bytes (" +
        std::to_string(max_line_bytes_) + ") without a newline");
  }
  return Status::OK();
}

Result<std::optional<std::string_view>> LineBuffer::Next() {
  if (complete_ > 0) {
    serving_.assign(pending_, 0, complete_);
    pending_.erase(0, complete_);
    complete_ = 0;
  } else if (closed_ && !pending_.empty()) {
    // End of stream: the unterminated tail goes out whole, exactly like
    // the final line of a file with no trailing newline.
    serving_ = std::move(pending_);
    pending_.clear();
  } else {
    return std::optional<std::string_view>();
  }
  consumed_bytes_ += serving_.size();
  return std::optional<std::string_view>(serving_);
}

std::size_t LineBuffer::ShedTail() {
  const std::size_t dropped = pending_.size() - complete_;
  pending_.resize(complete_);
  return dropped;
}

}  // namespace wum::ingest
