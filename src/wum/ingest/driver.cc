#include "wum/ingest/driver.h"

#include <algorithm>
#include <utility>

namespace wum::ingest {

Status IngestOptions::Validate() const {
  if (batch_records == 0) {
    return Status::InvalidArgument("IngestOptions: batch_records must be >= 1");
  }
  if (checkpoint_every_records > 0 && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "IngestOptions: checkpoint_every_records requires checkpoint_dir");
  }
  return Status::OK();
}

Result<IngestDriver> IngestDriver::Create(StreamEngine* engine,
                                          IngestOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("IngestDriver: engine must not be null");
  }
  WUM_RETURN_NOT_OK(options.Validate());
  return IngestDriver(engine, std::move(options));
}

Status IngestDriver::Pump(ByteSource* source, ClfParser* parser) {
  while (true) {
    WUM_ASSIGN_OR_RETURN(std::optional<std::string_view> chunk,
                         source->Next());
    if (!chunk.has_value()) return Status::OK();
    refs_.clear();
    WUM_RETURN_NOT_OK(parser->ParseChunk(*chunk, &refs_));
    WUM_RETURN_NOT_OK(OfferRefs(refs_));
  }
}

Status IngestDriver::OfferRefs(std::span<const LogRecordRef> refs) {
  const std::uint64_t cadence = options_.checkpoint_every_records;
  std::size_t offset = 0;
  while (offset < refs.size()) {
    std::size_t n = std::min(options_.batch_records, refs.size() - offset);
    if (cadence > 0) {
      // Chop at the cadence boundary so the checkpoint lands exactly on
      // a multiple of the cadence.
      n = std::min<std::size_t>(n, cadence - (records_offered_ % cadence));
    }
    WUM_RETURN_NOT_OK(engine_->OfferBatch(refs.subspan(offset, n)));
    offset += n;
    records_offered_ += n;
    if (cadence > 0 && records_offered_ % cadence == 0) {
      WUM_RETURN_NOT_OK(CheckpointNow());
    }
  }
  return Status::OK();
}

Status IngestDriver::CheckpointNow() {
  if (!checkpointing()) {
    return Status::FailedPrecondition(
        "IngestDriver: no checkpoint_dir configured");
  }
  WUM_RETURN_NOT_OK(
      engine_->Checkpoint(options_.checkpoint_dir, options_.sink_state));
  ++checkpoints_taken_;
  return Status::OK();
}

}  // namespace wum::ingest
