#include "wum/eval/experiment.h"

#include <atomic>
#include <thread>

#include "wum/stream/heuristic_registry.h"

namespace wum {

ExperimentConfig PaperDefaults() {
  ExperimentConfig config;
  config.site.num_pages = 300;
  config.site.mean_out_degree = 15.0;
  // Few entry pages ("index.html"-style): 1% of 300 = 3. The paper keeps
  // the number unspecified; it must be small for Figure 10's shape to
  // exist at all — behaviour-1 degrades accuracy only once the entry
  // pages are exhausted and re-entries are served from the browser
  // cache, leaving sessions whose first page never reaches the log.
  config.site.start_page_fraction = 0.01;
  config.profile.stp = 0.05;
  config.profile.lpp = 0.30;
  config.profile.nip = 0.30;
  config.profile.page_stay_mean_minutes = 2.2;
  config.profile.page_stay_stddev_minutes = 0.5;
  config.workload.num_agents = 10000;
  return config;
}

std::vector<std::unique_ptr<Sessionizer>> MakePaperHeuristics(
    const WebGraph* graph, const TimeThresholds& thresholds) {
  // Resolved through the one heuristic-name -> factory table; the
  // registry's registration order is the paper's heur1..heur4 order,
  // which report.cc relies on (the last score is Smart-SRA).
  HeuristicContext context;
  context.graph = graph;
  context.thresholds = thresholds;
  const HeuristicRegistry& registry = HeuristicRegistry::Default();
  std::vector<std::unique_ptr<Sessionizer>> heuristics;
  for (const std::string& name : registry.Names()) {
    Result<std::unique_ptr<Sessionizer>> heuristic =
        registry.CreateBatch(name, context);
    // Only fails on a null graph, which MakePaperHeuristics requires.
    if (heuristic.ok()) {
      heuristics.push_back(std::move(heuristic).ValueOrDie());
    }
  }
  return heuristics;
}

Result<WebGraph> GenerateSite(TopologyModel model,
                              const SiteGeneratorOptions& options, Rng* rng) {
  switch (model) {
    case TopologyModel::kUniform:
      return GenerateUniformSite(options, rng);
    case TopologyModel::kPowerLaw:
      return GeneratePowerLawSite(options, rng);
    case TopologyModel::kHierarchical:
      return GenerateHierarchicalSite(options, rng);
  }
  return Status::InvalidArgument("unknown topology model");
}

std::string_view SweepParameterToString(SweepParameter parameter) {
  switch (parameter) {
    case SweepParameter::kStp:
      return "STP";
    case SweepParameter::kLpp:
      return "LPP";
    case SweepParameter::kNip:
      return "NIP";
  }
  return "?";
}

Result<SweepPoint> RunExperimentPoint(const ExperimentConfig& config,
                                      SweepParameter parameter, double value,
                                      std::size_t point_index) {
  ExperimentConfig point_config = config;
  switch (parameter) {
    case SweepParameter::kStp:
      point_config.profile.stp = value;
      break;
    case SweepParameter::kLpp:
      point_config.profile.lpp = value;
      break;
    case SweepParameter::kNip:
      point_config.profile.nip = value;
      break;
  }
  WUM_RETURN_NOT_OK(ValidateAgentProfile(point_config.profile));

  // All points of a sweep share the topology (only behaviour varies),
  // mirroring the paper's "first fix two parameters" methodology.
  Rng site_rng(config.seed);
  Result<WebGraph> graph =
      GenerateSite(config.topology_model, point_config.site, &site_rng);
  if (!graph.ok()) return graph.status();

  // Independent workload stream per point, derived from the master seed.
  std::uint64_t state = config.seed;
  (void)SplitMix64(&state);
  state += static_cast<std::uint64_t>(parameter) * 0x9E3779B9ULL +
           point_index + 1;
  Rng workload_rng(SplitMix64(&state));
  WUM_ASSIGN_OR_RETURN(Workload workload,
                       SimulateWorkload(*graph, point_config.profile,
                                        point_config.workload, &workload_rng));

  SweepPoint point;
  point.parameter_value = value;
  point.real_sessions = workload.TotalRealSessions();
  AccuracyEvaluator evaluator(&graph.ValueOrDie(), config.thresholds,
                              config.accuracy);
  for (const auto& heuristic :
       MakePaperHeuristics(&graph.ValueOrDie(), config.thresholds)) {
    WUM_ASSIGN_OR_RETURN(AccuracyResult result,
                         evaluator.Evaluate(workload, *heuristic));
    point.scores.push_back(HeuristicScore{heuristic->name(), result});
  }
  return point;
}

Result<std::vector<SweepPoint>> RunSweep(const ExperimentConfig& config,
                                         SweepParameter parameter,
                                         const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("sweep needs at least one value");
  }
  std::size_t num_threads = config.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, values.size());

  std::vector<Result<SweepPoint>> results(values.size(),
                                          Status::Internal("not run"));
  std::atomic<std::size_t> next_index{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next_index.fetch_add(1);
      if (i >= values.size()) return;
      results[i] = RunExperimentPoint(config, parameter, values[i], i);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (Result<SweepPoint>& result : results) {
    if (!result.ok()) return result.status();
    points.push_back(std::move(result).ValueOrDie());
  }
  return points;
}

std::vector<double> Figure8StpValues() {
  std::vector<double> values;
  for (int percent = 1; percent <= 20; ++percent) {
    values.push_back(percent / 100.0);
  }
  return values;
}

std::vector<double> Figure9LppValues() {
  std::vector<double> values;
  for (int percent = 0; percent <= 90; percent += 10) {
    values.push_back(percent / 100.0);
  }
  return values;
}

std::vector<double> Figure10NipValues() { return Figure9LppValues(); }

}  // namespace wum
