// Session-reconstruction quality measures from the paper's reference
// [2] (Berendt, Mobasher, Spiliopoulou, Nakagawa, "A Framework for the
// Evaluation of Session Reconstruction Heuristics", INFORMS J. on
// Computing 15(2), 2003): a *categorical* measure — the fraction of real
// sessions reconstructed exactly — and a *gradual* measure — the average
// similarity between each real session and its best-matching
// reconstruction. They complement the paper's capture metric: capture is
// binary per session, these quantify how close the misses were.

#ifndef WUM_EVAL_BERENDT_MEASURES_H_
#define WUM_EVAL_BERENDT_MEASURES_H_

#include <vector>

#include "wum/common/result.h"
#include "wum/eval/accuracy.h"

namespace wum {

/// Length of the longest common subsequence of two page sequences
/// (classic O(|a|·|b|) dynamic program).
std::size_t LongestCommonSubsequenceLength(const std::vector<PageId>& a,
                                           const std::vector<PageId>& b);

/// Similarity in [0, 1]: |LCS(a, b)| / max(|a|, |b|); 1 iff equal,
/// 0 iff disjoint (both empty counts as 1).
double SequenceSimilarity(const std::vector<PageId>& a,
                          const std::vector<PageId>& b);

/// Aggregate outcome over a workload.
struct BerendtMeasures {
  std::size_t real_sessions = 0;
  /// Real sessions for which some reconstruction is exactly equal
  /// (page sequence identity) — the categorical measure M_cr.
  std::size_t exact_reconstructions = 0;
  /// Sum over real sessions of the best similarity to any
  /// reconstruction of the same user.
  double similarity_sum = 0.0;

  double exact_ratio() const {
    return real_sessions == 0 ? 0.0
                              : static_cast<double>(exact_reconstructions) /
                                    static_cast<double>(real_sessions);
  }
  double mean_best_similarity() const {
    return real_sessions == 0 ? 0.0
                              : similarity_sum /
                                    static_cast<double>(real_sessions);
  }
};

/// Computes both measures for one heuristic on one workload. The same
/// user-identity grouping as AccuracyEvaluator applies; reconstructions
/// are NOT validity-filtered (the similarity measure is about closeness,
/// not eligibility).
Result<BerendtMeasures> EvaluateBerendtMeasures(
    const Workload& workload, const Sessionizer& sessionizer,
    UserIdentity identity = UserIdentity::kClientIp);

}  // namespace wum

#endif  // WUM_EVAL_BERENDT_MEASURES_H_
