// Downstream mining quality: the paper's motivation for accurate session
// reconstruction is that pattern discovery runs on the sessions. This
// module mines frequent navigation patterns from a heuristic's
// reconstruction and from the ground truth, and scores the overlap —
// precision/recall/F1 of the *knowledge* extracted, not just of the
// sessions themselves.

#ifndef WUM_EVAL_PATTERN_QUALITY_H_
#define WUM_EVAL_PATTERN_QUALITY_H_

#include <vector>

#include "wum/clf/user_partitioner.h"
#include "wum/common/result.h"
#include "wum/mining/apriori_all.h"
#include "wum/session/sessionizer.h"
#include "wum/simulator/workload.h"

namespace wum {

/// Outcome of comparing two mined pattern sets by page sequence.
struct PatternQuality {
  std::size_t true_patterns = 0;   // mined from ground truth
  std::size_t mined_patterns = 0;  // mined from the reconstruction
  std::size_t matched = 0;         // sequences present in both
  /// Mean over matched patterns of |log2(rel. support in reconstruction /
  /// rel. support in truth)| — how badly fragmentation or merging skews
  /// the support estimates even when the pattern itself is found.
  /// 0 when corpus sizes were not supplied.
  double mean_support_distortion = 0.0;

  double precision() const {
    return mined_patterns == 0 ? 0.0
                               : static_cast<double>(matched) /
                                     static_cast<double>(mined_patterns);
  }
  double recall() const {
    return true_patterns == 0 ? 0.0
                              : static_cast<double>(matched) /
                                    static_cast<double>(true_patterns);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Set comparison by page sequence. When both corpus sizes are non-zero
/// the support-distortion statistic is computed from the patterns'
/// relative supports; otherwise supports are ignored.
PatternQuality ComparePatternSets(
    const std::vector<SequentialPattern>& truth,
    const std::vector<SequentialPattern>& mined,
    std::size_t truth_corpus_size = 0, std::size_t mined_corpus_size = 0);

/// Mining configuration for the comparison.
struct PatternQualityOptions {
  /// Support threshold as a fraction of each side's session count
  /// (heuristics that fragment into more sessions are thresholded
  /// against their own corpus size), floored at `min_support_floor`.
  double min_support_fraction = 0.005;
  std::size_t min_support_floor = 2;
  MatchMode mode = MatchMode::kContiguous;
  /// Patterns shorter than this are ignored (length-1 patterns carry no
  /// navigation information and would inflate every score).
  std::size_t min_pattern_length = 2;
  /// User identity used when building reconstruction inputs.
  UserIdentity identity = UserIdentity::kClientIp;
};

/// Mines both sides and compares. The ground-truth corpus is the
/// workload's real sessions; the reconstruction corpus is the
/// heuristic's output over the per-user streams.
Result<PatternQuality> EvaluatePatternQuality(
    const Workload& workload, const Sessionizer& sessionizer,
    const PatternQualityOptions& options = PatternQualityOptions());

/// Helper: mines patterns of length >= min_pattern_length from a corpus
/// with the relative support rule above.
Result<std::vector<SequentialPattern>> MineCorpus(
    const std::vector<std::vector<PageId>>& sessions,
    const PatternQualityOptions& options);

}  // namespace wum

#endif  // WUM_EVAL_PATTERN_QUALITY_H_
