#include "wum/eval/pattern_quality.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "wum/eval/accuracy.h"

namespace wum {

PatternQuality ComparePatternSets(
    const std::vector<SequentialPattern>& truth,
    const std::vector<SequentialPattern>& mined,
    std::size_t truth_corpus_size, std::size_t mined_corpus_size) {
  std::map<std::vector<PageId>, std::size_t> truth_map;
  for (const SequentialPattern& pattern : truth) {
    truth_map[pattern.pages] = pattern.support;
  }
  PatternQuality quality;
  quality.true_patterns = truth_map.size();
  std::map<std::vector<PageId>, std::size_t> mined_map;
  for (const SequentialPattern& pattern : mined) {
    mined_map[pattern.pages] = pattern.support;
  }
  quality.mined_patterns = mined_map.size();
  double distortion_sum = 0.0;
  const bool with_distortion =
      truth_corpus_size > 0 && mined_corpus_size > 0;
  for (const auto& [pages, support] : mined_map) {
    auto it = truth_map.find(pages);
    if (it == truth_map.end()) continue;
    ++quality.matched;
    if (with_distortion && support > 0 && it->second > 0) {
      const double mined_relative =
          static_cast<double>(support) /
          static_cast<double>(mined_corpus_size);
      const double truth_relative =
          static_cast<double>(it->second) /
          static_cast<double>(truth_corpus_size);
      distortion_sum += std::abs(std::log2(mined_relative / truth_relative));
    }
  }
  if (with_distortion && quality.matched > 0) {
    quality.mean_support_distortion =
        distortion_sum / static_cast<double>(quality.matched);
  }
  return quality;
}

Result<std::vector<SequentialPattern>> MineCorpus(
    const std::vector<std::vector<PageId>>& sessions,
    const PatternQualityOptions& options) {
  AprioriOptions mining;
  mining.min_support = std::max<std::size_t>(
      options.min_support_floor,
      static_cast<std::size_t>(options.min_support_fraction *
                               static_cast<double>(sessions.size())));
  mining.mode = options.mode;
  AprioriAllMiner miner(mining);
  WUM_ASSIGN_OR_RETURN(std::vector<SequentialPattern> patterns,
                       miner.Mine(sessions));
  std::erase_if(patterns, [&options](const SequentialPattern& pattern) {
    return pattern.pages.size() < options.min_pattern_length;
  });
  return patterns;
}

Result<PatternQuality> EvaluatePatternQuality(
    const Workload& workload, const Sessionizer& sessionizer,
    const PatternQualityOptions& options) {
  std::vector<std::vector<PageId>> truth_corpus;
  for (const AgentRun& agent : workload.agents) {
    for (const Session& session : agent.trace.real_sessions) {
      truth_corpus.push_back(session.PageSequence());
    }
  }
  std::vector<std::vector<PageId>> mined_corpus;
  for (const auto& [ip, stream] :
       BuildIpStreams(workload, options.identity)) {
    WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                         sessionizer.Reconstruct(stream));
    for (const Session& session : sessions) {
      mined_corpus.push_back(session.PageSequence());
    }
  }
  WUM_ASSIGN_OR_RETURN(std::vector<SequentialPattern> truth,
                       MineCorpus(truth_corpus, options));
  WUM_ASSIGN_OR_RETURN(std::vector<SequentialPattern> mined,
                       MineCorpus(mined_corpus, options));
  return ComparePatternSets(truth, mined, truth_corpus.size(),
                            mined_corpus.size());
}

}  // namespace wum
