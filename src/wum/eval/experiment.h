// Experiment runner: regenerates the paper's Figures 8-10 — accuracy of
// the four heuristics as one behaviour probability sweeps while the other
// two stay at their Table 5 defaults.

#ifndef WUM_EVAL_EXPERIMENT_H_
#define WUM_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wum/common/time.h"
#include "wum/eval/accuracy.h"
#include "wum/session/sessionizer.h"
#include "wum/simulator/workload.h"
#include "wum/topology/site_generator.h"

namespace wum {

/// Which topology generator an experiment uses.
enum class TopologyModel {
  kUniform = 0,       // the paper's model
  kPowerLaw = 1,      // ablation
  kHierarchical = 2,  // ablation
};

/// Dispatches to the matching generator.
Result<WebGraph> GenerateSite(TopologyModel model,
                              const SiteGeneratorOptions& options, Rng* rng);

/// Full configuration of one experiment run.
struct ExperimentConfig {
  SiteGeneratorOptions site;
  TopologyModel topology_model = TopologyModel::kUniform;
  AgentProfile profile;
  WorkloadOptions workload;
  TimeThresholds thresholds;
  AccuracyOptions accuracy;
  std::uint64_t seed = 20060102;
  /// Worker threads for sweep points; 0 = hardware concurrency.
  std::size_t num_threads = 0;
};

/// Table 5 parameters: 300 pages, mean out-degree 15, stay 2.2 +- 0.5 min,
/// 10000 agents, STP 5%, LPP 30%, NIP 30%.
ExperimentConfig PaperDefaults();

/// The four heuristics of §5, in the paper's order, sharing `graph` and
/// `thresholds`.
std::vector<std::unique_ptr<Sessionizer>> MakePaperHeuristics(
    const WebGraph* graph, const TimeThresholds& thresholds);

/// Behaviour parameter a sweep varies.
enum class SweepParameter { kStp = 0, kLpp = 1, kNip = 2 };

std::string_view SweepParameterToString(SweepParameter parameter);

/// Accuracy of one heuristic at one sweep point.
struct HeuristicScore {
  std::string heuristic;
  AccuracyResult result;
};

/// One x-value of a figure.
struct SweepPoint {
  double parameter_value = 0.0;
  std::size_t real_sessions = 0;
  std::vector<HeuristicScore> scores;
};

/// Runs one point: generates the topology (seeded by config.seed, so all
/// points of a sweep share the site), simulates the workload (seeded by
/// config.seed and `point_index`), and scores every heuristic.
Result<SweepPoint> RunExperimentPoint(const ExperimentConfig& config,
                                      SweepParameter parameter, double value,
                                      std::size_t point_index);

/// Runs all points (in parallel across threads; deterministic regardless
/// of thread count). `values` are probabilities in [0, 1).
Result<std::vector<SweepPoint>> RunSweep(const ExperimentConfig& config,
                                         SweepParameter parameter,
                                         const std::vector<double>& values);

/// The paper's sweep grids: Fig 8 STP 1..20%, Fig 9/10 LPP/NIP 0..90%.
std::vector<double> Figure8StpValues();
std::vector<double> Figure9LppValues();
std::vector<double> Figure10NipValues();

}  // namespace wum

#endif  // WUM_EVAL_EXPERIMENT_H_
