// The paper's accuracy metric (§5.1): a real session R is captured when
// it occurs as a contiguous substring of some reconstructed session of
// the same client; accuracy is captured real sessions over all real
// sessions.

#ifndef WUM_EVAL_ACCURACY_H_
#define WUM_EVAL_ACCURACY_H_

#include <map>
#include <string>
#include <vector>

#include "wum/clf/user_partitioner.h"
#include "wum/common/histogram.h"
#include "wum/common/result.h"
#include "wum/session/referrer_heuristic.h"
#include "wum/session/sessionizer.h"
#include "wum/simulator/workload.h"

namespace wum {

/// How a real session is matched inside a reconstructed one.
enum class CaptureRelation {
  /// Contiguous, order-preserving match — the paper's relation (its
  /// counter-example rejects interrupted matches).
  kSubstring = 0,
  /// Order-preserving match with gaps allowed; ablation only.
  kSubsequence = 1,
};

std::string_view CaptureRelationToString(CaptureRelation relation);

/// True iff `real` is captured by at least one reconstruction.
bool IsCaptured(const std::vector<PageId>& real,
                const std::vector<std::vector<PageId>>& reconstructed,
                CaptureRelation relation);

/// Which ratio §5.1's "accuracy" denotes. Both use the same capture
/// relation; they differ in the numerator.
enum class AccuracyDefinition {
  /// |{reconstructed H : H captures some real session}| / |real| — the
  /// literal reading of "the ratio of correctly reconstructed sessions
  /// over the number of real sessions". This is the paper's metric: it
  /// is what makes Figure 10 decrease (raising NIP multiplies real
  /// sessions while the number of useful reconstructions cannot keep
  /// up) and it penalizes both fragmenting and merging heuristics.
  kCorrectReconstructions = 0,
  /// |{real R : some H captures R}| / |real| — the recall-style variant
  /// (kept for the metric ablation).
  kRealSessionsCaptured = 1,
};

std::string_view AccuracyDefinitionToString(AccuracyDefinition definition);

/// Metric configuration.
struct AccuracyOptions {
  AccuracyDefinition definition = AccuracyDefinition::kCorrectReconstructions;
  CaptureRelation relation = CaptureRelation::kSubstring;
  /// §5.1 opens with "An accurate session must satisfy both the
  /// timestamp and the topology rules": a reconstructed session is
  /// eligible to capture real sessions only when it is itself valid.
  /// This is what penalizes heur3's path-completed sessions (their
  /// inserted backward movements traverse hyperlinks in reverse) and the
  /// time heuristics' unlinked session seams. Disable for the
  /// capture-definition ablation.
  bool require_valid_sessions = true;
  /// How request streams are attributed to users. kClientIp is the
  /// paper's reactive setting; kClientIpAndUserAgent needs Combined-
  /// format logs and partially untangles proxies.
  UserIdentity identity = UserIdentity::kClientIp;
};

/// Aggregate outcome of scoring one heuristic on one workload.
struct AccuracyResult {
  /// Which definition accuracy() reports (copied from the options).
  AccuracyDefinition definition = AccuracyDefinition::kCorrectReconstructions;
  std::size_t real_sessions = 0;
  /// Real sessions captured by >= 1 eligible reconstruction.
  std::size_t captured_sessions = 0;
  /// Eligible reconstructions capturing >= 1 real session.
  std::size_t correct_reconstructions = 0;
  std::size_t reconstructed_sessions = 0;
  /// Reconstructed sessions passing the §5.1 validity requirement
  /// (== reconstructed_sessions when the filter is disabled).
  std::size_t valid_reconstructed_sessions = 0;
  /// Length statistics of the reconstructed sessions (the paper's
  /// "sessions tend to become much longer" claim about heur3).
  RunningStats reconstructed_length;
  /// Length statistics of the ground-truth sessions.
  RunningStats real_length;

  /// The paper's "real accuracy" under the configured definition.
  double accuracy() const {
    if (real_sessions == 0) return 0.0;
    const std::size_t numerator =
        definition == AccuracyDefinition::kCorrectReconstructions
            ? correct_reconstructions
            : captured_sessions;
    return static_cast<double>(numerator) /
           static_cast<double>(real_sessions);
  }

  /// The recall-style ratio regardless of the configured definition.
  double capture_rate() const {
    return real_sessions == 0
               ? 0.0
               : static_cast<double>(captured_sessions) /
                     static_cast<double>(real_sessions);
  }
};

/// Scores one heuristic against the ground truth of a workload.
///
/// Request streams are built per client IP (not per agent): a reactive
/// strategy only sees IPs, so agents sharing a proxy are evaluated
/// against the merged stream — exactly the degradation §1 describes.
class AccuracyEvaluator {
 public:
  /// `graph` (used to validate reconstructed sessions) must outlive the
  /// evaluator. `thresholds.max_page_stay` bounds the timestamp rule.
  AccuracyEvaluator(const WebGraph* graph, TimeThresholds thresholds,
                    AccuracyOptions options = AccuracyOptions());

  Result<AccuracyResult> Evaluate(const Workload& workload,
                                  const Sessionizer& sessionizer) const;

  /// Scores caller-built reconstructions (sessions keyed by client IP)
  /// with the same capture rules as Evaluate — used for algorithms that
  /// need inputs beyond PageRequest streams (e.g. the referrer oracle).
  AccuracyResult ScoreReconstructions(
      const Workload& workload,
      const std::map<std::string, std::vector<Session>>& reconstructions)
      const;

  const AccuracyOptions& options() const { return options_; }

 private:
  const WebGraph* graph_;
  TimeThresholds thresholds_;
  AccuracyOptions options_;
};

/// Groups the workload's server requests by user key (client IP, or
/// IP + user agent), each stream timestamp-sorted. Exposed for tests and
/// custom pipelines.
std::map<std::string, std::vector<PageRequest>> BuildIpStreams(
    const Workload& workload,
    UserIdentity identity = UserIdentity::kClientIp);

/// Same grouping but with the simulated Referer information attached,
/// for the referrer-oracle comparator.
std::map<std::string, std::vector<ReferredRequest>> BuildIpReferredStreams(
    const Workload& workload,
    UserIdentity identity = UserIdentity::kClientIp);

}  // namespace wum

#endif  // WUM_EVAL_ACCURACY_H_
