#include "wum/eval/report.h"

#include <algorithm>
#include <sstream>

#include "wum/common/csv.h"
#include "wum/common/table.h"

namespace wum {
namespace {

// The last score is heur4 by construction (MakePaperHeuristics order).
double BestBaselineAccuracy(const SweepPoint& point) {
  double best = 0.0;
  for (std::size_t i = 0; i + 1 < point.scores.size(); ++i) {
    best = std::max(best, point.scores[i].result.accuracy());
  }
  return best;
}

}  // namespace

std::string FormatRelativeMargin(double margin) {
  const std::string value = FormatDouble(margin * 100.0, 1) + "%";
  return margin >= 0 ? "+" + value : value;
}

double SmartSraRelativeMargin(const SweepPoint& point) {
  if (point.scores.empty()) return 0.0;
  const double best_baseline = BestBaselineAccuracy(point);
  if (best_baseline <= 0.0) return 0.0;
  return point.scores.back().result.accuracy() / best_baseline - 1.0;
}

void RenderSweepTable(const std::vector<SweepPoint>& points,
                      SweepParameter parameter, std::ostream* out) {
  std::vector<std::string> header{std::string(SweepParameterToString(parameter)) +
                                  " %"};
  if (!points.empty()) {
    for (const HeuristicScore& score : points.front().scores) {
      header.push_back(score.heuristic + " %");
    }
  }
  header.push_back("heur4 vs best other");
  header.push_back("real sessions");
  Table table(std::move(header));
  for (const SweepPoint& point : points) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(point.parameter_value * 100.0, 0));
    for (const HeuristicScore& score : point.scores) {
      row.push_back(FormatDouble(score.result.accuracy() * 100.0, 2));
    }
    row.push_back(FormatRelativeMargin(SmartSraRelativeMargin(point)));
    row.push_back(std::to_string(point.real_sessions));
    table.AddRow(std::move(row));
  }
  table.Render(out);
}

void RenderSweepCsv(const std::vector<SweepPoint>& points,
                    SweepParameter parameter, std::ostream* out) {
  CsvWriter csv(out);
  std::vector<std::string> header{
      std::string(SweepParameterToString(parameter))};
  if (!points.empty()) {
    for (const HeuristicScore& score : points.front().scores) {
      header.push_back(score.heuristic);
    }
  }
  header.emplace_back("real_sessions");
  csv.WriteRow(header);
  for (const SweepPoint& point : points) {
    std::vector<std::string> row{FormatDouble(point.parameter_value, 2)};
    for (const HeuristicScore& score : point.scores) {
      row.push_back(FormatDouble(score.result.accuracy(), 4));
    }
    row.push_back(std::to_string(point.real_sessions));
    csv.WriteRow(row);
  }
}

std::string SummarizeSweepShape(const std::vector<SweepPoint>& points) {
  if (points.empty()) return "no points";
  std::size_t smart_sra_wins = 0;
  double min_margin = 1e300;
  double max_margin = -1e300;
  for (const SweepPoint& point : points) {
    const double margin = SmartSraRelativeMargin(point);
    min_margin = std::min(min_margin, margin);
    max_margin = std::max(max_margin, margin);
    if (point.scores.back().result.accuracy() > BestBaselineAccuracy(point)) {
      ++smart_sra_wins;
    }
  }
  std::ostringstream oss;
  oss << "Smart-SRA best at " << smart_sra_wins << "/" << points.size()
      << " points; relative margin over best baseline in ["
      << FormatDouble(min_margin * 100.0, 1) << "%, "
      << FormatDouble(max_margin * 100.0, 1) << "%]; heur4 accuracy "
      << FormatDouble(points.front().scores.back().result.accuracy() * 100.0,
                      1)
      << "% -> "
      << FormatDouble(points.back().scores.back().result.accuracy() * 100.0, 1)
      << "% across the sweep";
  return oss.str();
}

}  // namespace wum
