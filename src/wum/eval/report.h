// Rendering of sweep results as the paper-style series (Markdown table +
// CSV) for the figure benches and EXPERIMENTS.md.

#ifndef WUM_EVAL_REPORT_H_
#define WUM_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "wum/eval/experiment.h"

namespace wum {

/// Markdown table: one row per sweep point, one accuracy column (in %)
/// per heuristic, plus a relative-margin column
/// (heur4 over the best of heur1-3).
void RenderSweepTable(const std::vector<SweepPoint>& points,
                      SweepParameter parameter, std::ostream* out);

/// CSV with the same content, for plotting.
void RenderSweepCsv(const std::vector<SweepPoint>& points,
                    SweepParameter parameter, std::ostream* out);

/// One-paragraph shape summary: who wins, min/max relative margin,
/// monotonicity of each series. Used by the figure benches to state the
/// paper-comparison verdict machine-readably.
std::string SummarizeSweepShape(const std::vector<SweepPoint>& points);

/// Smart-SRA's relative advantage at one point: accuracy(heur4) /
/// max(accuracy(heur1..3)) - 1. Returns 0 when the best baseline is 0.
double SmartSraRelativeMargin(const SweepPoint& point);

/// "+87.0%" / "-9.9%" rendering of a relative margin.
std::string FormatRelativeMargin(double margin);

}  // namespace wum

#endif  // WUM_EVAL_REPORT_H_
