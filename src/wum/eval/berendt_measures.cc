#include "wum/eval/berendt_measures.h"

#include <algorithm>
#include <map>

namespace wum {

std::size_t LongestCommonSubsequenceLength(const std::vector<PageId>& a,
                                           const std::vector<PageId>& b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single-row DP.
  std::vector<std::size_t> row(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = 0;  // row[j-1] from the previous iteration
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t above = row[j];
      row[j] = a[i - 1] == b[j - 1] ? diagonal + 1
                                    : std::max(above, row[j - 1]);
      diagonal = above;
    }
  }
  return row[b.size()];
}

double SequenceSimilarity(const std::vector<PageId>& a,
                          const std::vector<PageId>& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return static_cast<double>(LongestCommonSubsequenceLength(a, b)) /
         static_cast<double>(longest);
}

Result<BerendtMeasures> EvaluateBerendtMeasures(
    const Workload& workload, const Sessionizer& sessionizer,
    UserIdentity identity) {
  // Reconstruct once per user key.
  std::map<std::string, std::vector<std::vector<PageId>>> reconstructions;
  for (const auto& [user, stream] : BuildIpStreams(workload, identity)) {
    WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                         sessionizer.Reconstruct(stream));
    auto& sequences = reconstructions[user];
    sequences.reserve(sessions.size());
    for (const Session& session : sessions) {
      sequences.push_back(session.PageSequence());
    }
  }

  BerendtMeasures measures;
  for (const AgentRun& agent : workload.agents) {
    const auto& candidates = reconstructions[UserKeyFor(
        agent.client_ip, agent.user_agent, identity)];
    for (const Session& real : agent.trace.real_sessions) {
      ++measures.real_sessions;
      const std::vector<PageId> real_pages = real.PageSequence();
      double best = 0.0;
      bool exact = false;
      for (const std::vector<PageId>& candidate : candidates) {
        if (candidate == real_pages) {
          exact = true;
          best = 1.0;
          break;
        }
        best = std::max(best, SequenceSimilarity(candidate, real_pages));
      }
      if (exact) ++measures.exact_reconstructions;
      measures.similarity_sum += best;
    }
  }
  return measures;
}

}  // namespace wum
