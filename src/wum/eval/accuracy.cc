#include "wum/eval/accuracy.h"

#include <algorithm>

namespace wum {

std::string_view AccuracyDefinitionToString(AccuracyDefinition definition) {
  switch (definition) {
    case AccuracyDefinition::kCorrectReconstructions:
      return "correct-reconstructions";
    case AccuracyDefinition::kRealSessionsCaptured:
      return "real-sessions-captured";
  }
  return "unknown";
}

std::string_view CaptureRelationToString(CaptureRelation relation) {
  switch (relation) {
    case CaptureRelation::kSubstring:
      return "substring";
    case CaptureRelation::kSubsequence:
      return "subsequence";
  }
  return "unknown";
}

bool IsCaptured(const std::vector<PageId>& real,
                const std::vector<std::vector<PageId>>& reconstructed,
                CaptureRelation relation) {
  for (const std::vector<PageId>& candidate : reconstructed) {
    const bool hit = relation == CaptureRelation::kSubstring
                         ? ContainsAsSubstring(candidate, real)
                         : ContainsAsSubsequence(candidate, real);
    if (hit) return true;
  }
  return false;
}

std::map<std::string, std::vector<PageRequest>> BuildIpStreams(
    const Workload& workload, UserIdentity identity) {
  std::map<std::string, std::vector<PageRequest>> streams;
  for (const AgentRun& agent : workload.agents) {
    auto& stream =
        streams[UserKeyFor(agent.client_ip, agent.user_agent, identity)];
    stream.insert(stream.end(), agent.trace.server_requests.begin(),
                  agent.trace.server_requests.end());
  }
  for (auto& [ip, stream] : streams) {
    std::stable_sort(stream.begin(), stream.end(),
                     [](const PageRequest& a, const PageRequest& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return streams;
}

AccuracyEvaluator::AccuracyEvaluator(const WebGraph* graph,
                                     TimeThresholds thresholds,
                                     AccuracyOptions options)
    : graph_(graph), thresholds_(thresholds), options_(options) {}

std::map<std::string, std::vector<ReferredRequest>> BuildIpReferredStreams(
    const Workload& workload, UserIdentity identity) {
  std::map<std::string, std::vector<ReferredRequest>> streams;
  for (const AgentRun& agent : workload.agents) {
    auto& stream =
        streams[UserKeyFor(agent.client_ip, agent.user_agent, identity)];
    const AgentTrace& trace = agent.trace;
    for (std::size_t i = 0; i < trace.server_requests.size(); ++i) {
      const PageId referrer = i < trace.server_referrers.size()
                                  ? trace.server_referrers[i]
                                  : kInvalidPage;
      stream.push_back(ReferredRequest{trace.server_requests[i].page,
                                       referrer,
                                       trace.server_requests[i].timestamp});
    }
  }
  for (auto& [ip, stream] : streams) {
    std::stable_sort(stream.begin(), stream.end(),
                     [](const ReferredRequest& a, const ReferredRequest& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return streams;
}

AccuracyResult AccuracyEvaluator::ScoreReconstructions(
    const Workload& workload,
    const std::map<std::string, std::vector<Session>>& reconstructions)
    const {
  AccuracyResult result;
  result.definition = options_.definition;
  std::map<std::string, std::vector<std::vector<PageId>>> eligible;
  for (const auto& [ip, sessions] : reconstructions) {
    std::vector<std::vector<PageId>> sequences;
    sequences.reserve(sessions.size());
    for (const Session& session : sessions) {
      result.reconstructed_length.Add(static_cast<double>(session.size()));
      ++result.reconstructed_sessions;
      const bool valid =
          !options_.require_valid_sessions ||
          (SatisfiesTopologyRule(session, *graph_) &&
           SatisfiesTimestampRule(session, thresholds_.max_page_stay));
      if (valid) {
        ++result.valid_reconstructed_sessions;
        sequences.push_back(session.PageSequence());
      }
    }
    eligible[ip] = std::move(sequences);
  }

  // Ground truth grouped by the same user key as the reconstructions.
  std::map<std::string, std::vector<std::vector<PageId>>> real_by_user;
  for (const AgentRun& agent : workload.agents) {
    auto& list = real_by_user[UserKeyFor(agent.client_ip, agent.user_agent,
                                         options_.identity)];
    for (const Session& real : agent.trace.real_sessions) {
      ++result.real_sessions;
      result.real_length.Add(static_cast<double>(real.size()));
      list.push_back(real.PageSequence());
    }
  }

  for (const auto& [user, reals] : real_by_user) {
    const auto& candidates = eligible[user];
    // Recall-style numerator: real sessions captured by some H.
    for (const std::vector<PageId>& real : reals) {
      if (IsCaptured(real, candidates, options_.relation)) {
        ++result.captured_sessions;
      }
    }
    // The paper's numerator: reconstructions capturing some real session.
    for (const std::vector<PageId>& candidate : candidates) {
      for (const std::vector<PageId>& real : reals) {
        const bool hit = options_.relation == CaptureRelation::kSubstring
                             ? ContainsAsSubstring(candidate, real)
                             : ContainsAsSubsequence(candidate, real);
        if (hit) {
          ++result.correct_reconstructions;
          break;
        }
      }
    }
  }
  return result;
}

Result<AccuracyResult> AccuracyEvaluator::Evaluate(
    const Workload& workload, const Sessionizer& sessionizer) const {
  std::map<std::string, std::vector<Session>> reconstructions;
  for (const auto& [ip, stream] :
       BuildIpStreams(workload, options_.identity)) {
    WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions,
                         sessionizer.Reconstruct(stream));
    reconstructions[ip] = std::move(sessions);
  }
  return ScoreReconstructions(workload, reconstructions);
}

}  // namespace wum
