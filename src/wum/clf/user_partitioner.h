// User identification: groups cleaned log records into per-user request
// streams keyed by client IP (the only identity a reactive strategy has,
// per §1 — users behind one proxy collapse into one stream, which the
// proxy ablation bench exploits deliberately).

#ifndef WUM_CLF_USER_PARTITIONER_H_
#define WUM_CLF_USER_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// How log records are attributed to users. CLF only offers the IP; the
/// Combined format's User-Agent field separates distinct browsers behind
/// one proxy (the classic Cooley et al. refinement).
enum class UserIdentity {
  kClientIp = 0,
  kClientIpAndUserAgent = 1,
};

/// Composite identity key ("ip" or "ip\x1fuser-agent").
std::string UserKeyFor(const std::string& client_ip,
                       const std::string& user_agent, UserIdentity identity);

/// Allocation-free variant for the hot path: returns a view of the key
/// `UserKeyFor` would build. Under kClientIp the view aliases
/// `client_ip`; otherwise the composite is assembled into `*buffer`
/// (reused across calls, so it only allocates while growing) and the
/// view aliases the buffer. The view is invalidated by the next call
/// with the same buffer or by mutation of the aliased string.
std::string_view UserKeyView(std::string_view client_ip,
                             std::string_view user_agent,
                             UserIdentity identity, std::string* buffer);

namespace partitioner_internal {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t Fnv1aMix(std::uint64_t hash, std::string_view bytes) {
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace partitioner_internal

/// Stable 64-bit FNV-1a hash of the identity `UserKeyFor` would build,
/// computed without materializing the key string (hot path of the sharded
/// StreamEngine: shard = UserHashFor(...) % num_shards — inline because
/// it runs once per record in the partition pass). Deterministic across
/// runs and platforms, so shard assignment is reproducible.
inline std::uint64_t UserHashFor(std::string_view client_ip,
                                 std::string_view user_agent,
                                 UserIdentity identity) {
  using partitioner_internal::Fnv1aMix;
  std::uint64_t hash =
      Fnv1aMix(partitioner_internal::kFnvOffsetBasis, client_ip);
  if (identity == UserIdentity::kClientIpAndUserAgent) {
    hash = Fnv1aMix(hash, std::string_view("\x1f", 1));
    hash = Fnv1aMix(hash, user_agent);
  }
  return hash;
}

/// One user's request stream in timestamp order.
struct UserStream {
  /// Identity key the stream was grouped by (see UserKeyFor).
  std::string user_key;
  std::string client_ip;
  std::string user_agent;  // empty under kClientIp
  std::vector<PageRequest> requests;
};

/// Partitions records by client IP and converts canonical URLs to page
/// ids. Records whose URL is not a canonical page URL are skipped and
/// counted. Streams are sorted by timestamp (stable, preserving log order
/// for equal stamps); the stream list is sorted by IP for determinism.
struct PartitionResult {
  std::vector<UserStream> streams;
  std::uint64_t skipped_non_page_urls = 0;
};

/// `num_pages` bounds valid page ids; out-of-range pages are rejected
/// with InvalidArgument (they indicate a topology/log mismatch).
Result<PartitionResult> PartitionByUser(
    const std::vector<LogRecord>& records, std::size_t num_pages,
    UserIdentity identity = UserIdentity::kClientIp);

}  // namespace wum

#endif  // WUM_CLF_USER_PARTITIONER_H_
