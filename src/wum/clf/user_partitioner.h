// User identification: groups cleaned log records into per-user request
// streams keyed by client IP (the only identity a reactive strategy has,
// per §1 — users behind one proxy collapse into one stream, which the
// proxy ablation bench exploits deliberately).

#ifndef WUM_CLF_USER_PARTITIONER_H_
#define WUM_CLF_USER_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// How log records are attributed to users. CLF only offers the IP; the
/// Combined format's User-Agent field separates distinct browsers behind
/// one proxy (the classic Cooley et al. refinement).
enum class UserIdentity {
  kClientIp = 0,
  kClientIpAndUserAgent = 1,
};

/// Composite identity key ("ip" or "ip\x1fuser-agent").
std::string UserKeyFor(const std::string& client_ip,
                       const std::string& user_agent, UserIdentity identity);

/// Stable 64-bit FNV-1a hash of the identity `UserKeyFor` would build,
/// computed without materializing the key string (hot path of the sharded
/// StreamEngine: shard = UserHashFor(...) % num_shards). Deterministic
/// across runs and platforms, so shard assignment is reproducible.
std::uint64_t UserHashFor(std::string_view client_ip,
                          std::string_view user_agent, UserIdentity identity);

/// One user's request stream in timestamp order.
struct UserStream {
  /// Identity key the stream was grouped by (see UserKeyFor).
  std::string user_key;
  std::string client_ip;
  std::string user_agent;  // empty under kClientIp
  std::vector<PageRequest> requests;
};

/// Partitions records by client IP and converts canonical URLs to page
/// ids. Records whose URL is not a canonical page URL are skipped and
/// counted. Streams are sorted by timestamp (stable, preserving log order
/// for equal stamps); the stream list is sorted by IP for determinism.
struct PartitionResult {
  std::vector<UserStream> streams;
  std::uint64_t skipped_non_page_urls = 0;
};

/// `num_pages` bounds valid page ids; out-of-range pages are rejected
/// with InvalidArgument (they indicate a topology/log mismatch).
Result<PartitionResult> PartitionByUser(
    const std::vector<LogRecord>& records, std::size_t num_pages,
    UserIdentity identity = UserIdentity::kClientIp);

}  // namespace wum

#endif  // WUM_CLF_USER_PARTITIONER_H_
