#include "wum/clf/clf_writer.h"

namespace wum {

std::string FormatClfLine(const LogRecord& record) {
  std::string line;
  line.reserve(96);
  line += record.client_ip;
  line += " - - [";
  line += FormatClfTimestamp(record.timestamp);
  line += "] \"";
  line += HttpMethodToString(record.method);
  line += ' ';
  line += record.url;
  line += ' ';
  line += record.protocol;
  line += "\" ";
  line += std::to_string(record.status_code);
  line += ' ';
  line += record.bytes < 0 ? "-" : std::to_string(record.bytes);
  return line;
}

std::string FormatCombinedLogLine(const LogRecord& record) {
  std::string line = FormatClfLine(record);
  line += " \"";
  line += record.referrer.empty() ? "-" : record.referrer;
  line += "\" \"";
  line += record.user_agent.empty() ? "-" : record.user_agent;
  line += '"';
  return line;
}

void ClfWriter::Write(const LogRecord& record) {
  *out_ << (combined_ ? FormatCombinedLogLine(record)
                      : FormatClfLine(record))
        << '\n';
  ++records_written_;
}

}  // namespace wum
