#include "wum/clf/log_record.h"

#include <cstdio>

#include "wum/common/string_util.h"

namespace wum {

std::string_view HttpMethodToString(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kHead:
      return "HEAD";
  }
  return "GET";
}

std::string PageUrl(std::uint32_t page) {
  return "/pages/p" + std::to_string(page) + ".html";
}

Result<std::uint32_t> PageFromUrl(std::string_view url) {
  constexpr std::string_view kPrefix = "/pages/p";
  constexpr std::string_view kSuffix = ".html";
  if (!StartsWith(url, kPrefix) || !EndsWith(url, kSuffix) ||
      url.size() <= kPrefix.size() + kSuffix.size()) {
    return Status::NotFound("not a canonical page URL: '" + std::string(url) +
                            "'");
  }
  std::string_view digits =
      url.substr(kPrefix.size(), url.size() - kPrefix.size() - kSuffix.size());
  WUM_ASSIGN_OR_RETURN(std::uint64_t value, ParseUint64(digits));
  if (value > 0xFFFFFFFFULL) {
    return Status::OutOfRange("page id too large in URL");
  }
  return static_cast<std::uint32_t>(value);
}

std::string ReferrerUrl(std::uint32_t page) {
  return "http://www.site.example" + PageUrl(page);
}

Result<std::uint32_t> PageFromReferrer(std::string_view referrer) {
  if (referrer.empty()) return Status::NotFound("no referrer");
  constexpr std::string_view kHttp = "http://";
  constexpr std::string_view kHttps = "https://";
  if (StartsWith(referrer, kHttp) || StartsWith(referrer, kHttps)) {
    const std::size_t host_start =
        StartsWith(referrer, kHttp) ? kHttp.size() : kHttps.size();
    const std::size_t path_start = referrer.find('/', host_start);
    if (path_start == std::string_view::npos) {
      return Status::NotFound("referrer has no path");
    }
    referrer = referrer.substr(path_start);
  }
  return PageFromUrl(referrer);
}

std::string AgentIp(std::uint64_t agent_id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "10.%u.%u.%u",
                static_cast<unsigned>((agent_id / (254 * 254)) % 254),
                static_cast<unsigned>((agent_id / 254) % 254),
                static_cast<unsigned>(agent_id % 254) + 1);
  return buffer;
}

}  // namespace wum
