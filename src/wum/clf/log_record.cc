#include "wum/clf/log_record.h"

#include <cstdio>

#include "wum/common/string_util.h"

namespace wum {

std::string_view HttpMethodToString(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kHead:
      return "HEAD";
  }
  return "GET";
}

LogRecord LogRecordRef::Materialize() const {
  LogRecord record;
  record.client_ip = client_ip;
  record.timestamp = timestamp;
  record.method = method;
  record.url = url;
  record.protocol = protocol;
  record.status_code = status_code;
  record.bytes = bytes;
  record.referrer = referrer;
  record.user_agent = user_agent;
  return record;
}

void LogRecordRef::MaterializeInto(LogRecord* out) const {
  out->client_ip.assign(client_ip);
  out->timestamp = timestamp;
  out->method = method;
  out->url.assign(url);
  out->protocol.assign(protocol);
  out->status_code = status_code;
  out->bytes = bytes;
  out->referrer.assign(referrer);
  out->user_agent.assign(user_agent);
}

LogRecordRef ViewOf(const LogRecord& record) {
  LogRecordRef ref;
  ref.client_ip = record.client_ip;
  ref.timestamp = record.timestamp;
  ref.method = record.method;
  ref.url = record.url;
  ref.protocol = record.protocol;
  ref.status_code = record.status_code;
  ref.bytes = record.bytes;
  ref.referrer = record.referrer;
  ref.user_agent = record.user_agent;
  return ref;
}

std::string PageUrl(std::uint32_t page) {
  return "/pages/p" + std::to_string(page) + ".html";
}

Result<std::uint32_t> PageFromUrl(std::string_view url) {
  constexpr std::string_view kPrefix = "/pages/p";
  constexpr std::string_view kSuffix = ".html";
  if (!StartsWith(url, kPrefix) || !EndsWith(url, kSuffix) ||
      url.size() <= kPrefix.size() + kSuffix.size()) {
    return Status::NotFound("not a canonical page URL: '" + std::string(url) +
                            "'");
  }
  std::string_view digits =
      url.substr(kPrefix.size(), url.size() - kPrefix.size() - kSuffix.size());
  WUM_ASSIGN_OR_RETURN(std::uint64_t value, ParseUint64(digits));
  if (value > 0xFFFFFFFFULL) {
    return Status::OutOfRange("page id too large in URL");
  }
  return static_cast<std::uint32_t>(value);
}

std::string ReferrerUrl(std::uint32_t page) {
  return "http://www.site.example" + PageUrl(page);
}

Result<std::uint32_t> PageFromReferrer(std::string_view referrer) {
  if (referrer.empty()) return Status::NotFound("no referrer");
  constexpr std::string_view kHttp = "http://";
  constexpr std::string_view kHttps = "https://";
  if (StartsWith(referrer, kHttp) || StartsWith(referrer, kHttps)) {
    const std::size_t host_start =
        StartsWith(referrer, kHttp) ? kHttp.size() : kHttps.size();
    const std::size_t path_start = referrer.find('/', host_start);
    if (path_start == std::string_view::npos) {
      return Status::NotFound("referrer has no path");
    }
    referrer = referrer.substr(path_start);
  }
  return PageFromUrl(referrer);
}

std::string AgentIp(std::uint64_t agent_id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "10.%u.%u.%u",
                static_cast<unsigned>((agent_id / (254 * 254)) % 254),
                static_cast<unsigned>((agent_id / 254) % 254),
                static_cast<unsigned>(agent_id % 254) + 1);
  return buffer;
}

}  // namespace wum
