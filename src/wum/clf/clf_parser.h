// Robust Common Log Format parsing. Malformed lines are counted and
// reported, never fatal to the stream (real-world access logs are dirty).

#ifndef WUM_CLF_CLF_PARSER_H_
#define WUM_CLF_CLF_PARSER_H_

#include <functional>
#include <istream>
#include <string>
#include <vector>

#include "wum/clf/log_record.h"
#include "wum/common/result.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"

namespace wum {

/// Parses one CLF line into a zero-copy LogRecordRef whose string fields
/// view into `line` — the caller's buffer must outlive the ref. Accepts
/// the "%h %l %u [%t] \"%r\" %>s %b" layout produced by ClfWriter and by
/// Apache/NCSA httpd; the two identity fields are tolerated but
/// discarded. Parse errors name the offending CLF field, e.g.
/// "field 'status': ...". This is the hot-path entry point; no per-field
/// allocation happens on the success path.
Result<LogRecordRef> ParseClfLineRef(std::string_view line);

/// Owned-record convenience over ParseClfLineRef: parses then
/// Materialize()s. Use for slow paths and tests; batch ingestion should
/// prefer ParseClfLineRef / ClfParser::ParseChunk.
Result<LogRecord> ParseClfLine(std::string_view line);

/// Stream parser with malformed-line accounting.
class ClfParser {
 public:
  struct Stats {
    std::uint64_t lines_seen = 0;
    std::uint64_t records_parsed = 0;
    std::uint64_t lines_rejected = 0;
    /// First few reject reasons, each prefixed with the 1-based line
    /// number and naming the offending field, for diagnostics.
    std::vector<std::string> sample_errors;
  };

  ClfParser() = default;

  /// With a registry, mirrors Stats into the counters "clf.lines_seen",
  /// "clf.records_parsed" and "clf.lines_rejected" as the stream is
  /// parsed. `metrics` may be null (all handles stay disabled) and must
  /// otherwise outlive the parser.
  explicit ClfParser(obs::MetricRegistry* metrics)
      : lines_seen_(obs::CounterIn(metrics, "clf.lines_seen")),
        records_parsed_(obs::CounterIn(metrics, "clf.records_parsed")),
        lines_rejected_(obs::CounterIn(metrics, "clf.lines_rejected")) {}

  /// Called once per rejected line with its 1-based number, raw text and
  /// parse error. Generic on purpose: callers route rejects wherever they
  /// like (e.g. a stream-layer DeadLetterQueue) without this package
  /// depending on theirs.
  using RejectHandler = std::function<void(
      std::uint64_t line_number, std::string_view raw_line,
      const Status& reason)>;

  /// Installs `handler` (may be null to remove one). Sampling into
  /// stats().sample_errors continues either way.
  void set_reject_handler(RejectHandler handler) {
    reject_handler_ = std::move(handler);
  }

  /// With an enabled tracer, every line becomes a "parse" span whose
  /// seq is the 1-based line number (disabled by default; the clock is
  /// then never read).
  void set_tracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// Parses every line of `in`; appends good records to `*records`.
  /// IO failure is the only error condition — malformed lines are
  /// tallied in stats().
  Status ParseStream(std::istream* in, std::vector<LogRecord>* records);

  /// Zero-copy batch parse: splits `chunk` on '\n' (a final unterminated
  /// line parses too, so line-aligned ChunkReader chunks compose into
  /// exactly the stream's lines) and appends a LogRecordRef viewing into
  /// `chunk` for every well-formed line. Accounting — stats(), metric
  /// counters, reject handler, line numbering — is identical to feeding
  /// the same lines through ParseStream, and numbering continues across
  /// successive chunks. The refs are only valid while `chunk`'s buffer
  /// is; Materialize() anything that must outlive it.
  Status ParseChunk(std::string_view chunk, std::vector<LogRecordRef>* records);

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kMaxSampleErrors = 8;

  /// Shared per-line bookkeeping for ParseStream/ParseChunk: counts the
  /// line, parses it, and routes rejects to the handler and samples.
  Result<LogRecordRef> AccountLine(std::string_view line);

  RejectHandler reject_handler_;
  obs::Tracer tracer_;
  Stats stats_;
  obs::Counter lines_seen_;
  obs::Counter records_parsed_;
  obs::Counter lines_rejected_;
};

}  // namespace wum

#endif  // WUM_CLF_CLF_PARSER_H_
