// Data-cleaning filters: the "relevant information is filtered from the
// logs" step of the paper's data processing phase. Classic WUM cleaning
// drops embedded-resource requests (images, stylesheets), failed requests,
// non-page methods and robot traffic before session reconstruction.

#ifndef WUM_CLF_LOG_FILTER_H_
#define WUM_CLF_LOG_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "wum/clf/log_record.h"

namespace wum {

/// Predicate over log records; true means "keep".
class LogFilter {
 public:
  virtual ~LogFilter() = default;
  virtual std::string name() const = 0;
  virtual bool Keep(const LogRecord& record) const = 0;
};

/// Keeps records whose URL path does NOT end with one of the given
/// extensions (case-insensitive). Default set: common embedded resources.
class ExtensionFilter : public LogFilter {
 public:
  ExtensionFilter();
  explicit ExtensionFilter(std::vector<std::string> blocked_extensions);

  std::string name() const override { return "extension"; }
  bool Keep(const LogRecord& record) const override;

 private:
  std::vector<std::string> blocked_extensions_;  // lowercase, with dot
};

/// Keeps successful page loads: status in [200, 299] or 304 (cache
/// revalidation still witnesses a page view).
class StatusFilter : public LogFilter {
 public:
  std::string name() const override { return "status"; }
  bool Keep(const LogRecord& record) const override;
};

/// Keeps GET requests only (the method carrying page navigations).
class MethodFilter : public LogFilter {
 public:
  std::string name() const override { return "method"; }
  bool Keep(const LogRecord& record) const override;
};

/// Drops requests for "/robots.txt" and from clients that requested it
/// (a standard crawler fingerprint). Stateful: feed records in log order.
class RobotFilter : public LogFilter {
 public:
  std::string name() const override { return "robot"; }
  bool Keep(const LogRecord& record) const override;

  /// Registers crawler IPs from a first pass over the log.
  void ObserveForRobots(const std::vector<LogRecord>& records);

 private:
  std::vector<std::string> robot_ips_;  // sorted
};

/// Applies a conjunction of filters, tallying drops per filter.
class FilterChain {
 public:
  void Add(std::unique_ptr<LogFilter> filter);

  /// Returns the records passing every filter, in order.
  std::vector<LogRecord> Apply(const std::vector<LogRecord>& records);

  struct FilterStats {
    std::string name;
    std::uint64_t dropped = 0;
  };
  const std::vector<FilterStats>& stats() const { return stats_; }
  std::size_t size() const { return filters_.size(); }

  /// The conventional cleaning chain: method + status + extension.
  static FilterChain Standard();

 private:
  std::vector<std::unique_ptr<LogFilter>> filters_;
  std::vector<FilterStats> stats_;
};

}  // namespace wum

#endif  // WUM_CLF_LOG_FILTER_H_
