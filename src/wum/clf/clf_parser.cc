#include "wum/clf/clf_parser.h"

#include "wum/common/string_util.h"
#include "wum/obs/log.h"

namespace wum {
namespace {

/// Every reject names the CLF field it tripped on, so a sample error
/// like "line 7: field 'status': ..." pins down both where and what.
Status FieldError(std::string_view field, std::string_view detail) {
  return Status::ParseError("field '" + std::string(field) + "': " +
                            std::string(detail));
}

Result<HttpMethod> ParseMethod(std::string_view token) {
  if (token == "GET") return HttpMethod::kGet;
  if (token == "POST") return HttpMethod::kPost;
  if (token == "HEAD") return HttpMethod::kHead;
  return FieldError("request",
                    "unsupported method '" + std::string(token) + "'");
}

}  // namespace

Result<LogRecordRef> ParseClfLineRef(std::string_view line) {
  line = StripWhitespace(line);
  if (line.empty()) return Status::ParseError("empty line");

  LogRecordRef record;

  // %h: client host.
  std::size_t pos = line.find(' ');
  if (pos == std::string_view::npos) {
    return FieldError("host", "missing (no space-delimited fields)");
  }
  record.client_ip = line.substr(0, pos);

  // %l %u: identity fields, up to the '['.
  std::size_t bracket = line.find('[', pos);
  if (bracket == std::string_view::npos) {
    return FieldError("timestamp", "missing '[' before timestamp");
  }
  std::size_t bracket_end = line.find(']', bracket);
  if (bracket_end == std::string_view::npos) {
    return FieldError("timestamp", "missing ']' after timestamp");
  }
  Result<TimeSeconds> timestamp =
      ParseClfTimestamp(line.substr(bracket + 1, bracket_end - bracket - 1));
  if (!timestamp.ok()) {
    return FieldError("timestamp", timestamp.status().message());
  }
  record.timestamp = *timestamp;

  // "%r": the quoted request.
  std::size_t quote = line.find('"', bracket_end);
  if (quote == std::string_view::npos) {
    return FieldError("request", "missing opening quote");
  }
  std::size_t quote_end = line.find('"', quote + 1);
  if (quote_end == std::string_view::npos) {
    return FieldError("request", "missing closing quote");
  }
  std::string_view request = line.substr(quote + 1, quote_end - quote - 1);
  std::string_view request_parts[3];
  std::size_t num_parts = 0;
  for (std::size_t start = 0; start < request.size();) {
    const std::size_t space = request.find(' ', start);
    const std::string_view part =
        space == std::string_view::npos
            ? request.substr(start)
            : request.substr(start, space - start);
    if (!part.empty()) {
      if (num_parts == 3) {
        return FieldError("request", "must be 'METHOD URL PROTOCOL'");
      }
      request_parts[num_parts++] = part;
    }
    if (space == std::string_view::npos) break;
    start = space + 1;
  }
  if (num_parts != 3) {
    return FieldError("request", "must be 'METHOD URL PROTOCOL'");
  }
  WUM_ASSIGN_OR_RETURN(record.method, ParseMethod(request_parts[0]));
  record.url = request_parts[1];
  record.protocol = request_parts[2];
  if (record.protocol != "HTTP/1.0" && record.protocol != "HTTP/1.1") {
    return FieldError("request", "unsupported protocol '" +
                                     std::string(record.protocol) + "'");
  }

  // %>s %b: status and bytes, then optionally the combined-format
  // "referer" "user-agent" quoted fields.
  std::string_view tail = StripWhitespace(line.substr(quote_end + 1));
  const std::size_t first_space = tail.find(' ');
  if (first_space == std::string_view::npos) {
    return FieldError("status", "expected '<status> <bytes>' after request");
  }
  std::string_view status_token = tail.substr(0, first_space);
  std::string_view rest = StripWhitespace(tail.substr(first_space + 1));
  const std::size_t second_space = rest.find(' ');
  std::string_view bytes_token =
      second_space == std::string_view::npos ? rest
                                             : rest.substr(0, second_space);
  std::string_view extras =
      second_space == std::string_view::npos
          ? std::string_view()
          : StripWhitespace(rest.substr(second_space + 1));

  Result<std::int64_t> status = ParseInt64(status_token);
  if (!status.ok()) return FieldError("status", status.status().message());
  if (*status < 100 || *status > 599) {
    return FieldError("status", "status code out of range");
  }
  record.status_code = static_cast<int>(*status);
  if (bytes_token == "-") {
    record.bytes = -1;
  } else {
    Result<std::int64_t> bytes = ParseInt64(bytes_token);
    if (!bytes.ok()) return FieldError("bytes", bytes.status().message());
    if (*bytes < 0) return FieldError("bytes", "negative byte count");
    record.bytes = *bytes;
  }

  if (!extras.empty()) {
    // Combined Log Format: "referer" "user-agent".
    auto take_quoted =
        [&extras](std::string_view field) -> Result<std::string_view> {
      if (extras.empty() || extras.front() != '"') {
        return FieldError(field, "expected quoted combined-format field");
      }
      const std::size_t closing = extras.find('"', 1);
      if (closing == std::string_view::npos) {
        return FieldError(field, "unterminated combined-format field");
      }
      std::string_view value = extras.substr(1, closing - 1);
      extras = StripWhitespace(extras.substr(closing + 1));
      if (value == "-") value = std::string_view();
      return value;
    };
    WUM_ASSIGN_OR_RETURN(record.referrer, take_quoted("referer"));
    WUM_ASSIGN_OR_RETURN(record.user_agent, take_quoted("user-agent"));
    if (!extras.empty()) {
      return FieldError("user-agent", "trailing content after combined fields");
    }
  }
  return record;
}

Result<LogRecord> ParseClfLine(std::string_view line) {
  WUM_ASSIGN_OR_RETURN(LogRecordRef record, ParseClfLineRef(line));
  return record.Materialize();
}

Result<LogRecordRef> ClfParser::AccountLine(std::string_view line) {
  ++stats_.lines_seen;
  lines_seen_.Increment();
  Result<LogRecordRef> parsed = [&] {
    // Span per line, seq = the 1-based line number (shard is always 0:
    // parsing runs upstream of partitioning).
    obs::ScopedSpan span(tracer_, "parse", 0, stats_.lines_seen);
    return ParseClfLineRef(line);
  }();
  if (parsed.ok()) {
    ++stats_.records_parsed;
    records_parsed_.Increment();
  } else {
    ++stats_.lines_rejected;
    lines_rejected_.Increment();
    obs::LogWarn("clf.reject")("line", stats_.lines_seen)(
        "error", parsed.status().message());
    if (reject_handler_ != nullptr) {
      reject_handler_(stats_.lines_seen, line, parsed.status());
    }
    if (stats_.sample_errors.size() < kMaxSampleErrors) {
      // stats_.lines_seen is the 1-based number of the line just read.
      stats_.sample_errors.push_back("line " +
                                     std::to_string(stats_.lines_seen) + ": " +
                                     parsed.status().message());
    }
  }
  return parsed;
}

Status ClfParser::ParseChunk(std::string_view chunk,
                             std::vector<LogRecordRef>* records) {
  while (!chunk.empty()) {
    const std::size_t newline = chunk.find('\n');
    // A chunk need not end in '\n': the final line of a file (or of a
    // line-aligned ChunkReader chunk) parses like any other.
    const std::string_view line = newline == std::string_view::npos
                                      ? chunk
                                      : chunk.substr(0, newline);
    chunk = newline == std::string_view::npos ? std::string_view()
                                              : chunk.substr(newline + 1);
    if (StripWhitespace(line).empty()) {
      ++stats_.lines_seen;
      lines_seen_.Increment();
      continue;
    }
    Result<LogRecordRef> parsed = AccountLine(line);
    if (parsed.ok()) records->push_back(*parsed);
  }
  return Status::OK();
}

Status ClfParser::ParseStream(std::istream* in,
                              std::vector<LogRecord>* records) {
  std::string line;
  while (std::getline(*in, line)) {
    if (StripWhitespace(line).empty()) {
      ++stats_.lines_seen;
      lines_seen_.Increment();
      continue;
    }
    Result<LogRecordRef> parsed = AccountLine(line);
    if (parsed.ok()) records->push_back(parsed->Materialize());
  }
  if (in->bad()) return Status::IoError("stream read failure");
  return Status::OK();
}

}  // namespace wum
