// Common Log Format record model (paper §1, W3C httpd "common" format).
//
// Each server-handled request is one record with the seven attributes the
// paper lists: client IP, access date/time, request method, URL, protocol,
// return code, and bytes transmitted.

#ifndef WUM_CLF_LOG_RECORD_H_
#define WUM_CLF_LOG_RECORD_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "wum/common/time.h"

namespace wum {

/// HTTP request method as restricted by CLF-era web usage mining.
enum class HttpMethod {
  kGet = 0,
  kPost = 1,
  kHead = 2,
};

std::string_view HttpMethodToString(HttpMethod method);

/// Protocol assumed when a record does not carry one. Short enough for
/// every mainstream std::string small-buffer, so default-constructing a
/// LogRecord never touches the heap.
inline constexpr std::string_view kDefaultProtocol = "HTTP/1.1";

/// One access-log line in structured form.
struct LogRecord {
  /// Dotted-quad client address (proxy users share one, per §1).
  std::string client_ip;
  /// Request instant, UNIX seconds UTC.
  TimeSeconds timestamp = 0;
  HttpMethod method = HttpMethod::kGet;
  /// Request path, e.g. "/pages/p42.html".
  std::string url;
  /// "HTTP/1.0" or "HTTP/1.1".
  std::string protocol{kDefaultProtocol};
  /// HTTP status (200, 304, 404, ...).
  int status_code = 200;
  /// Response size in bytes; -1 renders as "-" (no body).
  std::int64_t bytes = 0;
  /// Combined Log Format extras; empty renders as "-". Plain CLF output
  /// omits them entirely (the paper's seven-attribute format), but the
  /// parser accepts both layouts and the referrer-oracle ablation needs
  /// them.
  std::string referrer;
  std::string user_agent;

  friend auto operator<=>(const LogRecord&, const LogRecord&) = default;
};

/// Zero-copy view of one access-log line: the string fields are
/// std::string_views into the buffer the line was parsed from (see
/// ClfParser::ParseChunk). A ref is valid only while that buffer is —
/// for a ChunkReader chunk, until the next Next() call. Anything that
/// outlives the buffer (dead-letter payloads, checkpoint journals,
/// collected test fixtures) must call Materialize() first.
struct LogRecordRef {
  std::string_view client_ip;
  TimeSeconds timestamp = 0;
  HttpMethod method = HttpMethod::kGet;
  std::string_view url;
  std::string_view protocol = kDefaultProtocol;
  int status_code = 200;
  std::int64_t bytes = 0;
  std::string_view referrer;
  std::string_view user_agent;

  /// Copies the viewed fields into an owned LogRecord (the slow path —
  /// the hot path hands refs to StreamEngine::OfferBatch instead).
  LogRecord Materialize() const;

  /// Copies the viewed fields into an existing record, reusing its
  /// string capacities — the allocation-free variant of Materialize for
  /// recycled record buffers.
  void MaterializeInto(LogRecord* out) const;

  friend auto operator<=>(const LogRecordRef&, const LogRecordRef&) = default;
};

/// Borrows `record` as a LogRecordRef; valid while `record` is alive and
/// unmodified. This is how single-record call sites reuse the batch path.
LogRecordRef ViewOf(const LogRecord& record);

/// Maps a dense PageId to the canonical URL used by the simulator
/// ("/pages/p<id>.html") and back.
std::string PageUrl(std::uint32_t page);

/// Extracts the page id from a canonical URL; returns kNotFound for URLs
/// not of the canonical form.
Result<std::uint32_t> PageFromUrl(std::string_view url);

/// Renders a synthetic client IP for an agent id, so at most 254^2 hosts
/// per /16: "10.<a>.<b>.<c>".
std::string AgentIp(std::uint64_t agent_id);

/// Absolute Referer-header URL for a page, as a 2006-era browser would
/// send it: "http://www.site.example/pages/p<id>.html".
std::string ReferrerUrl(std::uint32_t page);

/// Extracts the page id from a Referer value; accepts both the absolute
/// form produced by ReferrerUrl and a bare canonical path. NotFound for
/// external or empty referrers.
Result<std::uint32_t> PageFromReferrer(std::string_view referrer);

}  // namespace wum

#endif  // WUM_CLF_LOG_RECORD_H_
