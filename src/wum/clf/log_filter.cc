#include "wum/clf/log_filter.h"

#include <algorithm>

#include "wum/common/string_util.h"

namespace wum {

ExtensionFilter::ExtensionFilter()
    : ExtensionFilter({".gif", ".jpg", ".jpeg", ".png", ".ico", ".css", ".js",
                       ".swf", ".bmp"}) {}

ExtensionFilter::ExtensionFilter(std::vector<std::string> blocked_extensions)
    : blocked_extensions_(std::move(blocked_extensions)) {
  for (std::string& ext : blocked_extensions_) ext = AsciiToLower(ext);
}

bool ExtensionFilter::Keep(const LogRecord& record) const {
  // Compare against the path only (strip any query string).
  std::string_view path = record.url;
  std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  std::string lower = AsciiToLower(path);
  for (const std::string& ext : blocked_extensions_) {
    if (EndsWith(lower, ext)) return false;
  }
  return true;
}

bool StatusFilter::Keep(const LogRecord& record) const {
  return (record.status_code >= 200 && record.status_code < 300) ||
         record.status_code == 304;
}

bool MethodFilter::Keep(const LogRecord& record) const {
  return record.method == HttpMethod::kGet;
}

void RobotFilter::ObserveForRobots(const std::vector<LogRecord>& records) {
  for (const LogRecord& record : records) {
    if (record.url == "/robots.txt") {
      auto it = std::lower_bound(robot_ips_.begin(), robot_ips_.end(),
                                 record.client_ip);
      if (it == robot_ips_.end() || *it != record.client_ip) {
        robot_ips_.insert(it, record.client_ip);
      }
    }
  }
}

bool RobotFilter::Keep(const LogRecord& record) const {
  if (record.url == "/robots.txt") return false;
  return !std::binary_search(robot_ips_.begin(), robot_ips_.end(),
                             record.client_ip);
}

void FilterChain::Add(std::unique_ptr<LogFilter> filter) {
  stats_.push_back(FilterStats{filter->name(), 0});
  filters_.push_back(std::move(filter));
}

std::vector<LogRecord> FilterChain::Apply(
    const std::vector<LogRecord>& records) {
  std::vector<LogRecord> kept;
  kept.reserve(records.size());
  for (const LogRecord& record : records) {
    bool keep = true;
    for (std::size_t i = 0; i < filters_.size(); ++i) {
      if (!filters_[i]->Keep(record)) {
        ++stats_[i].dropped;
        keep = false;
        break;
      }
    }
    if (keep) kept.push_back(record);
  }
  return kept;
}

FilterChain FilterChain::Standard() {
  FilterChain chain;
  chain.Add(std::make_unique<MethodFilter>());
  chain.Add(std::make_unique<StatusFilter>());
  chain.Add(std::make_unique<ExtensionFilter>());
  return chain;
}

}  // namespace wum
