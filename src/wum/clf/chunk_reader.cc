#include "wum/clf/chunk_reader.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define WUM_CHUNK_READER_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WUM_CHUNK_READER_HAS_MMAP 0
#endif

namespace wum {
namespace {

#if WUM_CHUNK_READER_HAS_MMAP
/// Maps `path` read-only. Returns false (without failing the open) when
/// the file is empty, not a regular file, or the kernel refuses the map —
/// the caller then uses the buffered path.
bool TryMap(const std::string& path, const char** data, std::size_t* size) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat info;
  if (::fstat(fd, &info) != 0 || !S_ISREG(info.st_mode) || info.st_size <= 0) {
    ::close(fd);
    return false;
  }
  void* mapping = ::mmap(nullptr, static_cast<std::size_t>(info.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping stays valid after close; it holds its own reference.
  ::close(fd);
  if (mapping == MAP_FAILED) return false;
  ::madvise(mapping, static_cast<std::size_t>(info.st_size), MADV_SEQUENTIAL);
  *data = static_cast<const char*>(mapping);
  *size = static_cast<std::size_t>(info.st_size);
  return true;
}
#endif

}  // namespace

Result<ChunkReader> ChunkReader::Open(const std::string& path,
                                      std::size_t chunk_bytes) {
  if (chunk_bytes == 0) {
    return Status::InvalidArgument("chunk_bytes must be positive");
  }
  ChunkReader reader;
  reader.chunk_bytes_ = chunk_bytes;
#if WUM_CHUNK_READER_HAS_MMAP
  if (TryMap(path, &reader.mapping_, &reader.mapping_size_)) {
    return reader;
  }
#endif
  reader.file_.open(path, std::ios::binary);
  if (!reader.file_.is_open()) {
    return Status::IoError("cannot open log file '" + path + "'");
  }
  return reader;
}

ChunkReader::ChunkReader(ChunkReader&& other) noexcept
    : chunk_bytes_(other.chunk_bytes_),
      mapping_(std::exchange(other.mapping_, nullptr)),
      mapping_size_(std::exchange(other.mapping_size_, 0)),
      mapping_pos_(other.mapping_pos_),
      file_(std::move(other.file_)),
      buffer_(std::move(other.buffer_)),
      carry_(std::move(other.carry_)),
      eof_(other.eof_) {}

ChunkReader& ChunkReader::operator=(ChunkReader&& other) noexcept {
  if (this == &other) return *this;
#if WUM_CHUNK_READER_HAS_MMAP
  if (mapping_ != nullptr) {
    ::munmap(const_cast<char*>(mapping_), mapping_size_);
  }
#endif
  chunk_bytes_ = other.chunk_bytes_;
  mapping_ = std::exchange(other.mapping_, nullptr);
  mapping_size_ = std::exchange(other.mapping_size_, 0);
  mapping_pos_ = other.mapping_pos_;
  file_ = std::move(other.file_);
  buffer_ = std::move(other.buffer_);
  carry_ = std::move(other.carry_);
  eof_ = other.eof_;
  return *this;
}

ChunkReader::~ChunkReader() {
#if WUM_CHUNK_READER_HAS_MMAP
  if (mapping_ != nullptr) {
    ::munmap(const_cast<char*>(mapping_), mapping_size_);
  }
#endif
}

std::optional<std::string_view> ChunkReader::Next() {
  if (mapping_ != nullptr) return NextMapped();
  return NextBuffered();
}

std::optional<std::string_view> ChunkReader::NextMapped() {
  if (mapping_pos_ >= mapping_size_) return std::nullopt;
  const std::string_view remaining(mapping_ + mapping_pos_,
                                   mapping_size_ - mapping_pos_);
  if (remaining.size() <= chunk_bytes_) {
    mapping_pos_ = mapping_size_;
    return remaining;
  }
  // Cut at the last newline inside the window; if one chunk-sized window
  // holds no newline at all, extend to the next newline (or EOF) so a
  // pathological long line still arrives whole.
  std::size_t cut = remaining.rfind('\n', chunk_bytes_ - 1);
  if (cut == std::string_view::npos) {
    cut = remaining.find('\n', chunk_bytes_);
    if (cut == std::string_view::npos) {
      mapping_pos_ = mapping_size_;
      return remaining;
    }
  }
  mapping_pos_ += cut + 1;
  return remaining.substr(0, cut + 1);
}

std::optional<std::string_view> ChunkReader::NextBuffered() {
  if (eof_ && carry_.empty()) return std::nullopt;
  buffer_.assign(carry_);
  carry_.clear();
  while (!eof_) {
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + chunk_bytes_);
    file_.read(buffer_.data() + old_size,
               static_cast<std::streamsize>(chunk_bytes_));
    buffer_.resize(old_size + static_cast<std::size_t>(file_.gcount()));
    if (file_.eof()) eof_ = true;
    // Same cut rule as the mapped path: last newline in the window, or
    // keep reading until a long line completes.
    const std::size_t cut = buffer_.rfind('\n');
    if (cut != std::string::npos) {
      carry_.assign(buffer_, cut + 1, std::string::npos);
      buffer_.resize(cut + 1);
      return std::string_view(buffer_);
    }
    // No newline yet: keep extending until the long line completes.
  }
  if (buffer_.empty()) return std::nullopt;
  return std::string_view(buffer_);
}

}  // namespace wum
