#include "wum/clf/user_partitioner.h"

#include <algorithm>
#include <map>

namespace wum {

std::string UserKeyFor(const std::string& client_ip,
                       const std::string& user_agent, UserIdentity identity) {
  if (identity == UserIdentity::kClientIp) return client_ip;
  // \x1f (unit separator) cannot occur in an IP and is vanishingly rare
  // in user-agent strings, so the composite key is unambiguous.
  return client_ip + '\x1f' + user_agent;
}

namespace {

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1aMix(std::uint64_t hash, std::string_view bytes) {
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t UserHashFor(std::string_view client_ip,
                          std::string_view user_agent, UserIdentity identity) {
  std::uint64_t hash = Fnv1aMix(kFnvOffsetBasis, client_ip);
  if (identity == UserIdentity::kClientIpAndUserAgent) {
    hash = Fnv1aMix(hash, std::string_view("\x1f", 1));
    hash = Fnv1aMix(hash, user_agent);
  }
  return hash;
}

Result<PartitionResult> PartitionByUser(const std::vector<LogRecord>& records,
                                        std::size_t num_pages,
                                        UserIdentity identity) {
  PartitionResult result;
  std::map<std::string, UserStream> by_user;
  for (const LogRecord& record : records) {
    Result<std::uint32_t> page = PageFromUrl(record.url);
    if (!page.ok()) {
      ++result.skipped_non_page_urls;
      continue;
    }
    if (*page >= num_pages) {
      return Status::InvalidArgument(
          "log references page " + std::to_string(*page) +
          " outside the topology (" + std::to_string(num_pages) + " pages)");
    }
    const std::string key =
        UserKeyFor(record.client_ip, record.user_agent, identity);
    UserStream& stream = by_user[key];
    if (stream.requests.empty()) {
      stream.user_key = key;
      stream.client_ip = record.client_ip;
      if (identity == UserIdentity::kClientIpAndUserAgent) {
        stream.user_agent = record.user_agent;
      }
    }
    stream.requests.push_back(
        PageRequest{static_cast<PageId>(*page), record.timestamp});
  }
  result.streams.reserve(by_user.size());
  for (auto& [key, stream] : by_user) {
    std::stable_sort(stream.requests.begin(), stream.requests.end(),
                     [](const PageRequest& a, const PageRequest& b) {
                       return a.timestamp < b.timestamp;
                     });
    result.streams.push_back(std::move(stream));
  }
  return result;
}

}  // namespace wum
