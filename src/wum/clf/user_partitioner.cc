#include "wum/clf/user_partitioner.h"

#include <algorithm>
#include <map>

namespace wum {

std::string UserKeyFor(const std::string& client_ip,
                       const std::string& user_agent, UserIdentity identity) {
  if (identity == UserIdentity::kClientIp) return client_ip;
  // \x1f (unit separator) cannot occur in an IP and is vanishingly rare
  // in user-agent strings, so the composite key is unambiguous.
  return client_ip + '\x1f' + user_agent;
}

std::string_view UserKeyView(std::string_view client_ip,
                             std::string_view user_agent,
                             UserIdentity identity, std::string* buffer) {
  if (identity == UserIdentity::kClientIp) return client_ip;
  buffer->clear();
  buffer->reserve(client_ip.size() + 1 + user_agent.size());
  buffer->append(client_ip);
  buffer->push_back('\x1f');
  buffer->append(user_agent);
  return *buffer;
}

Result<PartitionResult> PartitionByUser(const std::vector<LogRecord>& records,
                                        std::size_t num_pages,
                                        UserIdentity identity) {
  PartitionResult result;
  std::map<std::string, UserStream> by_user;
  for (const LogRecord& record : records) {
    Result<std::uint32_t> page = PageFromUrl(record.url);
    if (!page.ok()) {
      ++result.skipped_non_page_urls;
      continue;
    }
    if (*page >= num_pages) {
      return Status::InvalidArgument(
          "log references page " + std::to_string(*page) +
          " outside the topology (" + std::to_string(num_pages) + " pages)");
    }
    const std::string key =
        UserKeyFor(record.client_ip, record.user_agent, identity);
    UserStream& stream = by_user[key];
    if (stream.requests.empty()) {
      stream.user_key = key;
      stream.client_ip = record.client_ip;
      if (identity == UserIdentity::kClientIpAndUserAgent) {
        stream.user_agent = record.user_agent;
      }
    }
    stream.requests.push_back(
        PageRequest{static_cast<PageId>(*page), record.timestamp});
  }
  result.streams.reserve(by_user.size());
  for (auto& [key, stream] : by_user) {
    std::stable_sort(stream.requests.begin(), stream.requests.end(),
                     [](const PageRequest& a, const PageRequest& b) {
                       return a.timestamp < b.timestamp;
                     });
    result.streams.push_back(std::move(stream));
  }
  return result;
}

}  // namespace wum
