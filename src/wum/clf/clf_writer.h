// Serializes LogRecords as Common Log Format lines:
//   127.0.0.1 - - [02/Jan/2006:15:04:05 +0000] "GET /x.html HTTP/1.1" 200 2326

#ifndef WUM_CLF_CLF_WRITER_H_
#define WUM_CLF_CLF_WRITER_H_

#include <ostream>
#include <string>

#include "wum/clf/log_record.h"

namespace wum {

/// Formats one record as a CLF line (no trailing newline). The combined
/// extras (referrer, user agent) are NOT emitted; use
/// FormatCombinedLogLine for those.
std::string FormatClfLine(const LogRecord& record);

/// NCSA Combined Log Format: the CLF line plus "referer" and
/// "user-agent" quoted fields (empty fields render as "-").
std::string FormatCombinedLogLine(const LogRecord& record);

/// Streams CLF lines to an ostream.
class ClfWriter {
 public:
  /// The writer does not own `out`. When `combined` is true every line
  /// carries the referrer / user-agent fields.
  explicit ClfWriter(std::ostream* out, bool combined = false)
      : out_(out), combined_(combined) {}

  ClfWriter(const ClfWriter&) = delete;
  ClfWriter& operator=(const ClfWriter&) = delete;

  void Write(const LogRecord& record);

  std::uint64_t records_written() const { return records_written_; }

 private:
  std::ostream* out_;
  bool combined_;
  std::uint64_t records_written_ = 0;
};

}  // namespace wum

#endif  // WUM_CLF_CLF_WRITER_H_
