// Line-aligned chunked file input for the zero-copy ingest path.
//
// A ChunkReader memory-maps an access log when the platform allows it
// and serves large line-aligned std::string_view chunks straight out of
// the mapping — no copy between the kernel page cache and the parser.
// When mmap is unavailable (non-POSIX builds, pipes, /proc files of
// unknown size) it degrades to buffered reads into an internal carry
// buffer with the same chunk contract.

#ifndef WUM_CLF_CHUNK_READER_H_
#define WUM_CLF_CHUNK_READER_H_

#include <cstddef>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "wum/common/result.h"

namespace wum {

class ChunkReader {
 public:
  /// Default chunk size: big enough to amortize per-chunk costs, small
  /// enough that the buffered fallback's carry copy stays cache-friendly.
  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;

  /// Opens `path` for chunked reading. Tries mmap first; falls back to
  /// buffered istream reads. Fails only if the file cannot be opened.
  static Result<ChunkReader> Open(const std::string& path,
                                  std::size_t chunk_bytes = kDefaultChunkBytes);

  ChunkReader(ChunkReader&& other) noexcept;
  ChunkReader& operator=(ChunkReader&& other) noexcept;
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;
  ~ChunkReader();

  /// Returns the next chunk, or nullopt at end of file. Chunks end on a
  /// '\n' boundary except possibly the last (a trailing unterminated
  /// line arrives whole), so feeding every chunk to
  /// ClfParser::ParseChunk reproduces the file's lines exactly. A line
  /// longer than the configured chunk size is still returned whole.
  ///
  /// Lifetime: in buffered mode the view is invalidated by the next
  /// Next() call; in mmap mode it lives until the reader is destroyed.
  /// Callers that keep LogRecordRefs across chunks must Materialize().
  std::optional<std::string_view> Next();

  /// True when the file is served from a memory mapping.
  bool memory_mapped() const { return mapping_ != nullptr; }

 private:
  ChunkReader() = default;

  std::optional<std::string_view> NextMapped();
  std::optional<std::string_view> NextBuffered();

  std::size_t chunk_bytes_ = kDefaultChunkBytes;

  // mmap mode.
  const char* mapping_ = nullptr;
  std::size_t mapping_size_ = 0;
  std::size_t mapping_pos_ = 0;

  // Buffered fallback.
  std::ifstream file_;
  std::string buffer_;
  std::string carry_;
  bool eof_ = false;
};

}  // namespace wum

#endif  // WUM_CLF_CHUNK_READER_H_
