#include "wum/net/server.h"

#include <algorithm>
#include <utility>

#include "wum/ckpt/codec.h"
#include "wum/obs/log.h"

namespace wum::net {

namespace {
// sink_state layout: magic uvarint, journal state string, offset count,
// then (client-id, offset) pairs. The magic guards against feeding a
// websra_sessionize sink_state (a bare decimal length) to the server.
constexpr std::uint64_t kServeSinkStateMagic = 0x53525645;  // "SRVE"
}  // namespace

std::string EncodeServeSinkState(std::string_view journal_state,
                                 const ClientOffsets& offsets) {
  ckpt::Encoder encoder;
  encoder.PutUvarint(kServeSinkStateMagic);
  encoder.PutString(journal_state);
  encoder.PutUvarint(offsets.size());
  for (const auto& [client_id, offset] : offsets) {
    encoder.PutString(client_id);
    encoder.PutUvarint(offset);
  }
  return encoder.Release();
}

Status DecodeServeSinkState(std::string_view encoded,
                            std::string* journal_state,
                            ClientOffsets* offsets) {
  ckpt::Decoder decoder(encoded);
  WUM_ASSIGN_OR_RETURN(const std::uint64_t magic, decoder.GetUvarint());
  if (magic != kServeSinkStateMagic) {
    return Status::ParseError(
        "sink_state was not written by websra_serve (bad magic)");
  }
  WUM_ASSIGN_OR_RETURN(*journal_state, decoder.GetString());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t count, decoder.GetUvarint());
  offsets->clear();
  offsets->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WUM_ASSIGN_OR_RETURN(std::string client_id, decoder.GetString());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t offset, decoder.GetUvarint());
    offsets->emplace_back(std::move(client_id), offset);
  }
  return decoder.ExpectEnd();
}

}  // namespace wum::net

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/mine/path_miner.h"
#include "wum/net/http.h"
#include "wum/obs/exposition.h"

namespace wum::net {

namespace {

constexpr std::size_t kMaxAdminLineBytes = 4096;
constexpr std::string_view kHelloPrefix = "HELLO ";

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

/// One accepted socket: either a data producer (LineBuffer + parser +
/// replay offset state) or an admin session (command buffer).
struct LogServer::Connection {
  Connection(std::size_t max_line_bytes, obs::MetricRegistry* metrics)
      : lines(max_line_bytes), parser(metrics) {}

  Fd fd;
  bool admin = false;
  bool http = false;  // observability scraper: one GET, one reply, close
  bool closing = false;
  std::uint64_t serial = 0;

  // Data state.
  ingest::LineBuffer lines;
  ClfParser parser;
  bool awaiting_handshake = true;
  std::string handshake_buffer;
  std::string client_id;       // empty = anonymous (no replay tracking)
  std::uint64_t base_offset = 0;    // bytes durable before this connection
  std::uint64_t skip_remaining = 0; // replayed bytes left to discard

  // Admin state.
  std::string admin_buffer;

  // HTTP state: the partially read request head.
  std::string http_buffer;

  // Lifecycle / quota state (see DeadlineConfig, ClientQuota).
  TokenBucket bucket;                   // default: unlimited
  std::uint64_t accepted_at_ms = 0;
  std::uint64_t last_activity_ms = 0;
  std::uint64_t partial_since_ms = 0;   // 0 = no incomplete line outstanding
  bool paused = false;                  // fd withheld from poll (pushback)
  std::uint64_t resume_at_ms = 0;       // wheel wake for a rate-limit pause
  std::uint64_t paused_since_ms = 0;    // 0 = not currently paused
};

Result<std::unique_ptr<LogServer>> LogServer::Start(
    ServerOptions options, StreamEngine* engine, DeadLetterQueue* dead_letters,
    ClientOffsets resumed_offsets) {
  if (engine == nullptr) {
    return Status::InvalidArgument("LogServer requires a StreamEngine");
  }
  // The server drives checkpoint cadence itself at connection-pump
  // boundaries (when every consumed byte has been offered), so the
  // per-client offsets in the manifest are exact; a driver-internal
  // mid-batch checkpoint would snapshot offsets for bytes not yet
  // offered. The cadence value moves from the driver options to the
  // server.
  ingest::IngestOptions driver_options = options.ingest;
  driver_options.checkpoint_every_records = 0;
  std::unique_ptr<LogServer> server(new LogServer(
      std::move(options), engine, dead_letters, std::move(resumed_offsets)));
  driver_options.sink_state = [raw = server.get()]() {
    return raw->ComposeSinkState();
  };
  WUM_ASSIGN_OR_RETURN(ingest::IngestDriver driver,
                       ingest::IngestDriver::Create(engine,
                                                    std::move(driver_options)));
  server->driver_.emplace(std::move(driver));
  WUM_RETURN_NOT_OK(server->BindListeners());
  return server;
}

LogServer::LogServer(ServerOptions options, StreamEngine* engine,
                     DeadLetterQueue* dead_letters,
                     ClientOffsets resumed_offsets)
    : options_(std::move(options)),
      engine_(engine),
      dead_letters_(dead_letters),
      client_offsets_(std::move(resumed_offsets)),
      read_buffer_(std::max<std::size_t>(options_.read_buffer_bytes, 1)),
      tracer_(obs::TracerIn(options_.trace)),
      m_accepted_(obs::CounterIn(options_.metrics,
                                 "net.connections_accepted")),
      m_closed_(obs::CounterIn(options_.metrics, "net.connections_closed")),
      m_handshakes_(obs::CounterIn(options_.metrics, "net.handshakes")),
      m_bytes_read_(obs::CounterIn(options_.metrics, "net.bytes_read")),
      m_shed_(obs::CounterIn(options_.metrics, "net.records_shed")),
      m_admin_(obs::CounterIn(options_.metrics, "net.admin_commands")),
      m_expired_(obs::CounterIn(options_.metrics, "net.conn.expired")),
      m_refused_(obs::CounterIn(options_.metrics, "net.conn.refused")),
      m_quota_shed_(obs::CounterIn(options_.metrics, "net.conn.quota_shed")),
      m_oversize_(obs::CounterIn(options_.metrics,
                                 "net.conn.oversize_rejected")),
      m_pause_ms_(obs::CounterIn(options_.metrics,
                                 "net.conn.pause_time_ms")),
      m_http_requests_(obs::CounterIn(options_.metrics,
                                      "net.http_requests")),
      g_active_(obs::GaugeIn(options_.metrics, "net.conn.active")) {}

std::uint64_t LogServer::NowMs() const {
  return options_.clock_ms != nullptr ? options_.clock_ms() : MonotonicMillis();
}

Status LogServer::BindListeners() {
  WUM_ASSIGN_OR_RETURN(data_listener_,
                       ListenTcp(options_.host, options_.port));
  WUM_RETURN_NOT_OK(SetNonBlocking(data_listener_, true));
  WUM_ASSIGN_OR_RETURN(port_, BoundPort(data_listener_));
  WUM_ASSIGN_OR_RETURN(admin_listener_,
                       ListenTcp(options_.host, options_.admin_port));
  WUM_RETURN_NOT_OK(SetNonBlocking(admin_listener_, true));
  WUM_ASSIGN_OR_RETURN(admin_port_, BoundPort(admin_listener_));
  if (options_.http_port.has_value()) {
    WUM_ASSIGN_OR_RETURN(http_listener_,
                         ListenTcp(options_.host, *options_.http_port));
    WUM_RETURN_NOT_OK(SetNonBlocking(http_listener_, true));
    WUM_ASSIGN_OR_RETURN(http_port_, BoundPort(http_listener_));
  }
  WUM_ASSIGN_OR_RETURN(auto pipe, MakePipe());
  stop_read_ = std::move(pipe.first);
  stop_write_ = std::move(pipe.second);
  return Status::OK();
}

Result<std::string> LogServer::ComposeSinkState() {
  std::string journal_state;
  if (options_.journal_state != nullptr) {
    WUM_ASSIGN_OR_RETURN(journal_state, options_.journal_state());
  }
  return EncodeServeSinkState(journal_state, client_offsets_);
}

std::uint64_t LogServer::OffsetFor(const std::string& client_id) const {
  for (const auto& [id, offset] : client_offsets_) {
    if (id == client_id) return offset;
  }
  return 0;
}

void LogServer::RecordOffset(const Connection& conn) {
  if (conn.client_id.empty()) return;
  const std::uint64_t offset = conn.base_offset + conn.lines.consumed_bytes();
  for (auto& [id, stored] : client_offsets_) {
    if (id == conn.client_id) {
      stored = offset;
      return;
    }
  }
  client_offsets_.emplace_back(conn.client_id, offset);
}

Status LogServer::AcceptPending(Fd* listener, bool admin) {
  while (true) {
    WUM_ASSIGN_OR_RETURN(Fd accepted, Accept(*listener));
    if (!accepted.valid()) return Status::OK();  // drained
    if (!admin) {
      // Admission control: refuse with a reason the producer can act on
      // (back off and retry) rather than queueing invisible producers.
      // The admin port is exempt — operators must reach an overloaded
      // server.
      const std::size_t data_connections = static_cast<std::size_t>(
          std::count_if(connections_.begin(), connections_.end(),
                        [](const auto& c) {
                          return !c->admin && !c->http && !c->closing;
                        }));
      if (data_connections >= options_.max_connections) {
        RefuseConnection(std::move(accepted), "max_connections");
        continue;
      }
      if (options_.ingest_budget_bytes != 0 &&
          BufferedBytesTotal() >= options_.ingest_budget_bytes) {
        RefuseConnection(std::move(accepted), "ingest_budget");
        continue;
      }
    }
    WUM_RETURN_NOT_OK(SetNonBlocking(accepted, true));
    auto conn = std::make_unique<Connection>(options_.max_line_bytes,
                                             options_.metrics);
    conn->fd = std::move(accepted);
    conn->admin = admin;
    conn->serial = ++stats_.connections_accepted;
    const std::uint64_t now = NowMs();
    conn->accepted_at_ms = now;
    conn->last_activity_ms = now;
    if (!admin && options_.client_quota.rate_limited()) {
      conn->bucket = TokenBucket(options_.client_quota.bytes_per_sec,
                                 options_.client_quota.effective_burst(), now);
    }
    m_accepted_.Increment();
    tracer_.Instant("accept", 0, conn->serial);
    if (!admin && dead_letters_ != nullptr) {
      // Malformed lines quarantine to the shared dead-letter channel,
      // tagged with the producer they came from.
      Connection* raw = conn.get();
      DeadLetterQueue* letters = dead_letters_;
      conn->parser.set_reject_handler(
          [raw, letters](std::uint64_t line_number, std::string_view raw_line,
                         const Status& reason) {
            DeadLetter letter;
            letter.stage = DeadLetter::Stage::kParse;
            letter.reason = reason;
            letter.detail =
                (raw->client_id.empty() ? std::string("anonymous")
                                        : raw->client_id) +
                " line " + std::to_string(line_number) + ": " +
                std::string(raw_line.substr(0, 200));
            letters->Offer(std::move(letter));
          });
    }
    obs::LogDebug("net.accept")("serial", conn->serial)(
        "kind", admin ? "admin" : "data");
    ArmDeadline(conn.get());
    connections_.push_back(std::move(conn));
    g_active_.Set(static_cast<std::uint64_t>(
        std::count_if(connections_.begin(), connections_.end(),
                      [](const auto& c) { return !c->closing; })));
  }
}

Status LogServer::AcceptHttpPending() {
  while (true) {
    WUM_ASSIGN_OR_RETURN(Fd accepted, Accept(http_listener_));
    if (!accepted.valid()) return Status::OK();  // drained
    const std::size_t http_connections = static_cast<std::size_t>(
        std::count_if(connections_.begin(), connections_.end(),
                      [](const auto& c) { return c->http && !c->closing; }));
    if (http_connections >= options_.max_http_connections) {
      // Close without a response: a scraper retries on its next
      // interval, and a connection flood must not buy loop time.
      ++stats_.connections_refused;
      m_refused_.Increment();
      continue;  // Fd destructor closes
    }
    WUM_RETURN_NOT_OK(SetNonBlocking(accepted, true));
    auto conn = std::make_unique<Connection>(options_.max_line_bytes,
                                             options_.metrics);
    conn->fd = std::move(accepted);
    conn->http = true;
    conn->serial = ++stats_.connections_accepted;
    const std::uint64_t now = NowMs();
    conn->accepted_at_ms = now;
    conn->last_activity_ms = now;
    m_accepted_.Increment();
    tracer_.Instant("accept", 0, conn->serial);
    obs::LogDebug("net.accept")("serial", conn->serial)("kind", "http");
    ArmDeadline(conn.get());
    connections_.push_back(std::move(conn));
    g_active_.Set(static_cast<std::uint64_t>(
        std::count_if(connections_.begin(), connections_.end(),
                      [](const auto& c) { return !c->closing; })));
  }
}

void LogServer::RefuseConnection(Fd accepted, const char* reason) {
  ++stats_.connections_refused;
  m_refused_.Increment();
  tracer_.Instant("refuse", 0, stats_.connections_refused);
  obs::LogWarn("net.refuse")("reason", reason);
  // Tell the peer why before the door shuts — zero write deadline; a
  // peer whose socket cannot take one BUSY line learns from the close.
  (void)WriteAll(accepted, std::string("BUSY ") + reason + "\n",
                 std::chrono::milliseconds(0));
}

void LogServer::CloseConnection(Connection* conn, const char* why) {
  if (conn->closing) return;
  if (conn->paused_since_ms != 0) {
    // Settle the open pause interval so the stall-time counter never
    // undercounts a producer that died while paused.
    m_pause_ms_.Increment(NowMs() - conn->paused_since_ms);
    conn->paused_since_ms = 0;
  }
  conn->closing = true;
  conn->fd.reset();
  wheel_.Cancel(conn->serial);
  ++stats_.connections_closed;
  m_closed_.Increment();
  if (options_.metrics != nullptr) {
    // Per-cause close accounting. Causes are a small fixed set of
    // static strings, and closes are rare — a registry lookup here
    // keeps the hot path free of per-cause handles.
    std::string name = "net.close.";
    for (const char* p = why; *p != '\0'; ++p) {
      name.push_back(*p == ' ' ? '_' : *p);
    }
    options_.metrics->GetCounter(name).Increment();
  }
  g_active_.Set(static_cast<std::uint64_t>(
      std::count_if(connections_.begin(), connections_.end(),
                    [](const auto& c) { return !c->closing; })));
  obs::LogDebug("net.close")("serial", conn->serial)("why", why);
}

void LogServer::Reply(Connection* conn, std::string_view reply) {
  if (conn->closing || !conn->fd.valid()) return;
  const std::chrono::milliseconds deadline =
      options_.deadlines.write_timeout_ms == 0
          ? kDefaultWriteDeadline
          : std::chrono::milliseconds(
                static_cast<std::int64_t>(options_.deadlines.write_timeout_ms));
  const Status written = WriteAll(conn->fd, reply, deadline);
  if (written.ok()) return;
  // A peer that resets (or stops reading) mid-reply costs exactly one
  // connection, never the serve loop.
  obs::LogWarn("net.reply")("serial", conn->serial)(
      "error", written.ToString());
  CloseConnection(conn, written.IsDeadlineExceeded() ? "write timeout"
                                                     : "reply failed");
}

void LogServer::DeadLetterPartial(Connection* conn, const Status& reason) {
  const std::size_t partial = conn->awaiting_handshake
                                  ? conn->handshake_buffer.size()
                                  : conn->lines.buffered_bytes();
  if (partial == 0 || dead_letters_ == nullptr) return;
  DeadLetter letter;
  letter.stage = DeadLetter::Stage::kParse;
  letter.reason = reason;
  letter.detail =
      (conn->client_id.empty() ? std::string("anonymous") : conn->client_id) +
      ": " + std::to_string(partial) + "-byte partial line carried at close";
  // The partial never became an accepted record; the letter is
  // attribution, not record accounting.
  letter.records_covered = 0;
  dead_letters_->Offer(std::move(letter));
}

LogServer::Connection* LogServer::FindBySerial(std::uint64_t serial) {
  for (auto& conn : connections_) {
    if (conn->serial == serial) return conn.get();
  }
  return nullptr;
}

std::uint64_t LogServer::BufferedBytesTotal() const {
  std::uint64_t total = 0;
  for (const auto& conn : connections_) {
    if (conn->closing) continue;
    total += conn->lines.buffered_bytes() + conn->handshake_buffer.size();
  }
  return total;
}

void LogServer::ArmDeadline(Connection* conn) {
  if (conn->closing) return;
  if (conn->http) {
    // Always-on request-head deadline: the slow-loris cut-off for
    // scrapers, independent of the opt-in data-port deadlines.
    const std::uint64_t timeout = options_.http_read_timeout_ms != 0
                                      ? options_.http_read_timeout_ms
                                      : 5000;
    wheel_.Schedule(conn->serial, conn->accepted_at_ms + timeout);
    return;
  }
  const DeadlineConfig& d = options_.deadlines;
  std::uint64_t earliest = UINT64_MAX;
  if (conn->paused && conn->resume_at_ms != 0) {
    earliest = std::min(earliest, conn->resume_at_ms);
  }
  if (d.idle_timeout_ms != 0) {
    earliest = std::min(earliest, conn->last_activity_ms + d.idle_timeout_ms);
  }
  if (!conn->admin) {
    if (d.handshake_timeout_ms != 0 && conn->awaiting_handshake) {
      earliest =
          std::min(earliest, conn->accepted_at_ms + d.handshake_timeout_ms);
    }
    if (d.read_timeout_ms != 0 && conn->partial_since_ms != 0) {
      earliest = std::min(earliest, conn->partial_since_ms + d.read_timeout_ms);
    }
  }
  if (earliest == UINT64_MAX) {
    wheel_.Cancel(conn->serial);
    return;
  }
  wheel_.Schedule(conn->serial, earliest);
}

Status LogServer::HandleDeadline(Connection* conn, std::uint64_t now_ms) {
  if (conn->closing) return Status::OK();
  if (conn->http) {
    const std::uint64_t timeout = options_.http_read_timeout_ms != 0
                                      ? options_.http_read_timeout_ms
                                      : 5000;
    if (now_ms < conn->accepted_at_ms + timeout) {
      ArmDeadline(conn);  // early wake
      return Status::OK();
    }
    ++stats_.connections_expired;
    m_expired_.Increment();
    obs::LogWarn("net.expire")("serial", conn->serial)("reason",
                                                       "http timeout");
    Reply(conn, RenderHttpResponse(408, "text/plain", "request timeout\n"));
    CloseConnection(conn, "http timeout");
    return Status::OK();
  }
  if (conn->paused && conn->resume_at_ms != 0 && now_ms >= conn->resume_at_ms) {
    // Rate-limit pause over: the fd rejoins the poll set next
    // iteration. The pause itself was not idleness.
    conn->paused = false;
    conn->resume_at_ms = 0;
    conn->last_activity_ms = now_ms;
    if (conn->paused_since_ms != 0) {
      m_pause_ms_.Increment(now_ms - conn->paused_since_ms);
      conn->paused_since_ms = 0;
    }
  }
  const DeadlineConfig& d = options_.deadlines;
  const char* reason = nullptr;
  if (d.idle_timeout_ms != 0 &&
      now_ms >= conn->last_activity_ms + d.idle_timeout_ms) {
    reason = "idle timeout";
  }
  if (!conn->admin && reason == nullptr) {
    if (d.handshake_timeout_ms != 0 && conn->awaiting_handshake &&
        now_ms >= conn->accepted_at_ms + d.handshake_timeout_ms) {
      reason = "handshake timeout";
    } else if (d.read_timeout_ms != 0 && conn->partial_since_ms != 0 &&
               now_ms >= conn->partial_since_ms + d.read_timeout_ms) {
      reason = "read timeout";
    }
  }
  if (reason != nullptr) return ExpireConnection(conn, reason);
  ArmDeadline(conn);  // early wake or freshly unpaused: re-arm
  return Status::OK();
}

Status LogServer::ExpireConnection(Connection* conn, const char* reason) {
  ++stats_.connections_expired;
  m_expired_.Increment();
  tracer_.Instant("expire", 0, conn->serial);
  obs::LogWarn("net.expire")("serial", conn->serial)("reason", reason)(
      "client", conn->client_id.empty() ? "anonymous" : conn->client_id);
  // Best-effort protocol farewell with a zero write deadline: the peer
  // being reaped is by definition not a well-behaved reader, and the
  // loop must not stall on its account.
  (void)WriteAll(conn->fd, std::string("ERR ") + reason + "\n",
                 std::chrono::milliseconds(0));
  if (!conn->admin) {
    // Salvage every complete line, then quarantine the carried partial
    // with producer attribution. The replay offset stays on the last
    // line boundary, so an identified client that reconnects re-sends
    // the interrupted line whole.
    if (!conn->awaiting_handshake) {
      WUM_RETURN_NOT_OK(PumpConnection(conn));
    }
    DeadLetterPartial(conn, Status::DeadlineExceeded(reason));
  }
  CloseConnection(conn, reason);
  return Status::OK();
}

Status LogServer::DegradeConnection(Connection* conn, const char* reason,
                                    std::uint64_t now_ms) {
  if (engine_->offer_policy() == OfferPolicy::kShed) {
    // Shed: quarantine the buffered complete lines (pulled through the
    // LineBuffer so the replay offset advances past them — deliberately
    // shed data must not resurrect on resume), drop the partial, and
    // drop the producer.
    std::uint64_t shed_lines = 0;
    while (true) {
      WUM_ASSIGN_OR_RETURN(std::optional<std::string_view> chunk,
                           conn->lines.Next());
      if (!chunk.has_value()) break;
      shed_lines += static_cast<std::uint64_t>(
          std::count(chunk->begin(), chunk->end(), '\n'));
    }
    if (shed_lines > 0) {
      stats_.lines_quota_shed += shed_lines;
      m_quota_shed_.Increment(shed_lines);
      if (dead_letters_ != nullptr) {
        DeadLetter letter;
        letter.stage = DeadLetter::Stage::kParse;
        letter.reason = Status::FailedPrecondition(reason);
        letter.detail = (conn->client_id.empty() ? std::string("anonymous")
                                                 : conn->client_id) +
                        ": " + std::to_string(shed_lines) +
                        " lines shed over quota";
        letter.records_covered = shed_lines;
        dead_letters_->Offer(std::move(letter));
      }
    }
    DeadLetterPartial(conn, Status::FailedPrecondition(reason));
    (void)conn->lines.ShedTail();
    RecordOffset(*conn);
    obs::LogWarn("net.quota")("serial", conn->serial)("action", "shed")(
        "reason", reason)("lines", shed_lines);
    (void)WriteAll(conn->fd, std::string("ERR ") + reason + "\n",
                   std::chrono::milliseconds(0));
    CloseConnection(conn, reason);
    return Status::OK();
  }
  // kBlock: stop polling this fd — the kernel receive buffer fills and
  // TCP pushes back on this producer alone; everyone else keeps
  // flowing. The buffered partial is bounded by max_line_bytes, and the
  // read/idle deadlines are what eventually reap a producer that never
  // completes its line.
  if (!conn->paused) {
    conn->paused = true;
    conn->resume_at_ms = now_ms + 50;  // re-check cadence while blocked
    if (conn->paused_since_ms == 0) conn->paused_since_ms = now_ms;
    obs::LogWarn("net.quota")("serial", conn->serial)("action", "pause")(
        "reason", reason);
    ArmDeadline(conn);
  }
  return Status::OK();
}

Status LogServer::PumpConnection(Connection* conn) {
  const std::uint64_t shed_before = engine_->TotalStats().records_shed;
  const Status status = driver_->Pump(&conn->lines, &conn->parser);
  const std::uint64_t shed_delta =
      engine_->TotalStats().records_shed - shed_before;
  if (shed_delta > 0) {
    // The engine counted the drop; keep the conservation invariant
    // (emitted + dead-lettered == accepted) auditable by attributing
    // the shed records to their producer in the dead-letter channel.
    stats_.records_shed += shed_delta;
    m_shed_.Increment(shed_delta);
    obs::LogWarn("net.shed")("serial", conn->serial)("records", shed_delta);
    if (dead_letters_ != nullptr) {
      DeadLetter letter;
      letter.stage = DeadLetter::Stage::kRecord;
      letter.shard = 0;
      letter.reason = Status::FailedPrecondition(
          "shard queue full: records shed under OfferPolicy::kShed");
      letter.detail = conn->client_id.empty() ? std::string("anonymous")
                                              : conn->client_id;
      letter.records_covered = shed_delta;
      dead_letters_->Offer(std::move(letter));
    }
  }
  RecordOffset(*conn);
  WUM_RETURN_NOT_OK(status);
  // Server-driven checkpoint cadence: only at pump boundaries, where
  // consumed bytes == offered records, so the offsets just recorded are
  // exactly what the engine has seen.
  const std::uint64_t cadence = options_.ingest.checkpoint_every_records;
  if (cadence > 0 && driver_->checkpointing() &&
      driver_->records_offered() - records_at_last_checkpoint_ >= cadence) {
    WUM_RETURN_NOT_OK(driver_->CheckpointNow());
    records_at_last_checkpoint_ = driver_->records_offered();
    last_checkpoint_ms_ = NowMs();
  }
  return Status::OK();
}

Status LogServer::HandleData(Connection* conn, std::string_view bytes) {
  stats_.bytes_read += bytes.size();
  m_bytes_read_.Increment(bytes.size());
  if (conn->skip_remaining > 0) {
    // Replay of bytes a checkpoint already covers: discard server-side,
    // so resume is exactly-once even when the client re-sends from
    // byte zero.
    const std::size_t skip =
        std::min<std::size_t>(conn->skip_remaining, bytes.size());
    conn->skip_remaining -= skip;
    bytes.remove_prefix(skip);
  }
  if (bytes.empty()) return Status::OK();
  const Status append = conn->lines.Append(bytes);
  if (!append.ok()) {
    // The refused bytes were still read off the wire, so they already
    // counted against the producer's rate quota at read time; here they
    // are tallied as an oversize rejection and the producer dropped.
    ++stats_.oversize_rejections;
    m_oversize_.Increment();
    if (dead_letters_ != nullptr) {
      DeadLetter letter;
      letter.stage = DeadLetter::Stage::kParse;
      letter.reason = append;
      letter.detail = conn->client_id.empty() ? std::string("anonymous")
                                              : conn->client_id;
      letter.records_covered = 0;  // never became an accepted record
      dead_letters_->Offer(std::move(letter));
    }
    obs::LogWarn("net.overlong")("serial", conn->serial)(
        "error", append.message())("rejected_bytes",
                                   conn->lines.rejected_bytes());
    WUM_RETURN_NOT_OK(PumpConnection(conn));  // salvage complete lines
    CloseConnection(conn, "overlong line");
    return Status::OK();
  }
  return PumpConnection(conn);
}

Status LogServer::HandleHandshakeBuffer(Connection* conn) {
  const std::size_t newline = conn->handshake_buffer.find('\n');
  if (newline == std::string::npos) {
    if (conn->handshake_buffer.size() > kMaxAdminLineBytes &&
        conn->handshake_buffer.compare(0, kHelloPrefix.size(),
                                       kHelloPrefix) == 0) {
      CloseConnection(conn, "oversized handshake");
    } else if (conn->handshake_buffer.size() > options_.max_line_bytes) {
      CloseConnection(conn, "oversized first line");
    }
    return Status::OK();
  }
  const std::string buffered = std::move(conn->handshake_buffer);
  conn->handshake_buffer.clear();
  conn->awaiting_handshake = false;
  const std::string_view first_line =
      StripCr(std::string_view(buffered).substr(0, newline));
  if (first_line.size() >= kHelloPrefix.size() &&
      first_line.substr(0, kHelloPrefix.size()) == kHelloPrefix) {
    const std::string client_id(first_line.substr(kHelloPrefix.size()));
    if (client_id.empty()) {
      Reply(conn, "ERR empty client-id\n");
      CloseConnection(conn, "empty client-id");
      return Status::OK();
    }
    for (const auto& other : connections_) {
      if (other.get() != conn && !other->closing &&
          other->client_id == client_id) {
        Reply(conn, "ERR duplicate client-id\n");
        CloseConnection(conn, "duplicate client-id");
        return Status::OK();
      }
    }
    conn->client_id = client_id;
    conn->base_offset = OffsetFor(client_id);
    conn->skip_remaining = conn->base_offset;
    ++stats_.handshakes;
    m_handshakes_.Increment();
    obs::LogInfo("net.handshake")("client", client_id)(
        "skip", conn->base_offset);
    Reply(conn, "OK " + std::to_string(conn->base_offset) + "\n");
    if (conn->closing) return Status::OK();  // peer died taking the reply
    // Anything the client pipelined after HELLO is data.
    return HandleData(conn,
                      std::string_view(buffered).substr(newline + 1));
  }
  // No handshake: the first line is already data. Anonymous producers
  // get no replay tracking (documented at-most-once on restart).
  return HandleData(conn, buffered);
}

Status LogServer::AdminPing(Connection* conn, std::string_view) {
  Reply(conn, "OK\n");
  return Status::OK();
}

Status LogServer::AdminStats(Connection* conn, std::string_view args) {
  if (args.empty()) {
    // Legacy reply, byte-identical to the pre-STATS-JSON contract (the
    // chaos smoke greps it).
    if (options_.metrics == nullptr) {
      Reply(conn, "ERR metrics disabled\n");
    } else {
      Reply(conn, options_.metrics->Snapshot().ToJsonLine() + "\n");
    }
    return Status::OK();
  }
  if (args == "JSON") {
    // The same body /statusz serves, so scripts without an HTTP client
    // get the operational snapshot over the admin protocol.
    Reply(conn, StatuszJson() + "\n");
    return Status::OK();
  }
  Reply(conn, "ERR usage: STATS [JSON]\n");
  return Status::OK();
}

Status LogServer::AdminCheckpoint(Connection* conn, std::string_view) {
  const Status status = driver_->CheckpointNow();
  if (!status.ok()) {
    Reply(conn, "ERR " + status.message() + "\n");
    return Status::OK();
  }
  records_at_last_checkpoint_ = driver_->records_offered();
  last_checkpoint_ms_ = NowMs();
  Reply(conn,
        "OK records_seen=" + std::to_string(engine_->records_seen()) + "\n");
  return Status::OK();
}

Status LogServer::AdminQuiesce(Connection* conn, std::string_view) {
  std::string detail;
  const Status status = DoQuiesce(&detail);
  if (!status.ok()) {
    // An engine that cannot quiesce is a fatal serve error; the reply
    // is best-effort on the way down.
    Reply(conn, "ERR " + status.message() + "\n");
    return status;
  }
  Reply(conn, detail.empty() ? std::string("OK\n") : "OK " + detail + "\n");
  return Status::OK();
}

Status LogServer::AdminPatterns(Connection* conn, std::string_view args) {
  mine::MiningSink* mining = engine_->mining();
  if (mining == nullptr) {
    Reply(conn, "ERR mining disabled (start with --mine-topk)\n");
    return Status::OK();
  }
  // PATTERNS [k] [len]: both operands optional, k defaults to the
  // configured top_k, len 0 merges every mined length.
  std::uint64_t operands[2] = {0, 0};
  std::size_t parsed = 0;
  while (!args.empty()) {
    const std::size_t space = args.find(' ');
    const std::string_view token = args.substr(0, space);
    args = space == std::string_view::npos ? std::string_view()
                                           : args.substr(space + 1);
    if (token.empty()) continue;
    std::uint64_t value = 0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size() ||
        parsed >= 2) {
      Reply(conn, "ERR usage: PATTERNS [k] [len]\n");
      return Status::OK();
    }
    operands[parsed++] = value;
  }
  Reply(conn, mining->PatternsJson(static_cast<std::size_t>(operands[0]),
                                   static_cast<std::size_t>(operands[1])) +
                  "\n");
  return Status::OK();
}

Status LogServer::HandleAdminLine(Connection* conn, std::string_view line) {
  // One row per admin command. Commands that take no operands keep the
  // historical exact-match contract: any trailing text falls through to
  // the shared unknown-command reply.
  struct AdminHandlerEntry {
    std::string_view name;
    bool takes_args;
    Status (LogServer::*run)(Connection* conn, std::string_view args);
  };
  static constexpr AdminHandlerEntry kAdminHandlers[] = {
      {"PING", false, &LogServer::AdminPing},
      {"STATS", true, &LogServer::AdminStats},
      {"CHECKPOINT", false, &LogServer::AdminCheckpoint},
      {"QUIESCE", false, &LogServer::AdminQuiesce},
      {"PATTERNS", true, &LogServer::AdminPatterns},
  };
  line = StripCr(line);
  if (line.empty()) return Status::OK();
  ++stats_.admin_commands;
  m_admin_.Increment();
  obs::LogInfo("net.admin")("command", std::string(line.substr(0, 120)));
  const std::size_t space = line.find(' ');
  const std::string_view name =
      space == std::string_view::npos ? line : line.substr(0, space);
  const std::string_view args =
      space == std::string_view::npos ? std::string_view()
                                      : line.substr(space + 1);
  for (const AdminHandlerEntry& handler : kAdminHandlers) {
    if (handler.name != name) continue;
    if (!handler.takes_args && space != std::string_view::npos) break;
    return (this->*handler.run)(conn, args);
  }
  Reply(conn,
        "ERR unknown command: " + std::string(line.substr(0, 200)) + "\n");
  return Status::OK();
}

Status LogServer::DoQuiesce(std::string* detail) {
  if (quiesced_) {
    if (detail != nullptr) *detail = "already quiesced";
    return Status::OK();
  }
  obs::LogInfo("net.quiesce")("connections", connections_.size());
  stopping_ = true;
  data_listener_.reset();
  // Drain every data producer: first whatever the kernel already holds
  // for the socket (a producer that finished and closed just before the
  // QUIESCE arrived must not lose its tail to ordering), then the
  // buffered remainder (the final unterminated line included), and
  // close. Bytes a still-live producer sends after its socket stops
  // being read are dropped by the close — identified clients recover
  // them through replay.
  for (auto& conn : connections_) {
    if (conn->admin || conn->http || conn->closing) continue;
    bool progress = true;
    while (progress && !conn->closing) {
      WUM_RETURN_NOT_OK(HandleReadable(conn.get(), &progress));
    }
    if (conn->closing) continue;  // EOF path already pumped the tail
    if (conn->awaiting_handshake && !conn->handshake_buffer.empty()) {
      // The producer never completed a line; treat the buffer as data.
      const std::string buffered = std::move(conn->handshake_buffer);
      conn->handshake_buffer.clear();
      conn->awaiting_handshake = false;
      WUM_RETURN_NOT_OK(HandleData(conn.get(), buffered));
    }
    conn->lines.Close();
    WUM_RETURN_NOT_OK(PumpConnection(conn.get()));
    CloseConnection(conn.get(), "quiesce");
  }
  WUM_RETURN_NOT_OK(engine_->Finish());
  if (options_.on_quiesce != nullptr) {
    WUM_ASSIGN_OR_RETURN(const std::string hook_detail, options_.on_quiesce());
    if (detail != nullptr) *detail = hook_detail;
  }
  quiesced_ = true;
  return Status::OK();
}

std::string LogServer::HealthProblems() {
  std::string problems;
  const auto add = [&problems](const std::string& problem) {
    if (!problems.empty()) problems += "; ";
    problems += problem;
  };
  const std::vector<Status> health = engine_->ShardHealth();
  for (std::size_t i = 0; i < health.size(); ++i) {
    if (!health[i].ok()) {
      add("shard" + std::to_string(i) + " dead: " + health[i].message());
    }
  }
  if (dead_letters_ != nullptr && dead_letters_->overflow_dropped() > 0) {
    add("dead-letter queue saturated (" +
        std::to_string(dead_letters_->overflow_dropped()) +
        " letters dropped)");
  }
  if (options_.healthz_max_checkpoint_age_ms != 0 &&
      driver_->checkpointing()) {
    // Before the first checkpoint of this run the server's own start is
    // the age baseline, so a daemon that never manages to checkpoint
    // still turns unhealthy.
    const std::uint64_t base =
        last_checkpoint_ms_ != 0 ? last_checkpoint_ms_ : started_at_ms_;
    const std::uint64_t now = NowMs();
    if (base != 0 && now > base &&
        now - base > options_.healthz_max_checkpoint_age_ms) {
      add("checkpoint stale (" + std::to_string(now - base) + "ms old)");
    }
  }
  return problems;
}

std::string LogServer::StatuszJson() {
  const std::uint64_t now = NowMs();
  const std::string problems = HealthProblems();
  const std::vector<EngineStats> shard_stats = engine_->ShardStats();
  const std::vector<Status> shard_health = engine_->ShardHealth();
  const std::size_t active = static_cast<std::size_t>(
      std::count_if(connections_.begin(), connections_.end(),
                    [](const auto& c) { return !c->closing; }));
  // Key order is fixed and every key is always present, so CI and
  // websra_top can assert on the byte shape (same contract as the
  // metrics JSON exporter).
  std::ostringstream out;
  out << "{\"healthy\":" << (problems.empty() ? "true" : "false")
      << ",\"problems\":\"" << obs::internal::EscapeJson(problems)
      << "\",\"server\":{\"uptime_ms\":"
      << (started_at_ms_ != 0 && now > started_at_ms_ ? now - started_at_ms_
                                                      : 0)
      << ",\"port\":" << port_ << ",\"admin_port\":" << admin_port_
      << ",\"http_port\":" << http_port_ << ",\"connections\":{\"active\":"
      << active << ",\"accepted\":" << stats_.connections_accepted
      << ",\"closed\":" << stats_.connections_closed
      << ",\"expired\":" << stats_.connections_expired
      << ",\"refused\":" << stats_.connections_refused
      << "},\"checkpoint\":{\"enabled\":"
      << (driver_->checkpointing() ? "true" : "false") << ",\"age_ms\":"
      << (last_checkpoint_ms_ != 0 && now > last_checkpoint_ms_
              ? now - last_checkpoint_ms_
              : 0)
      << "}},\"engine\":{\"records_seen\":" << engine_->records_seen()
      << ",\"shards\":[";
  for (std::size_t i = 0; i < shard_stats.size(); ++i) {
    const EngineStats& stats = shard_stats[i];
    if (i > 0) out << ",";
    out << "{\"index\":" << i << ",\"healthy\":"
        << (shard_health[i].ok() ? "true" : "false") << ",\"error\":\""
        << obs::internal::EscapeJson(
               shard_health[i].ok() ? "" : shard_health[i].message())
        << "\",\"records_in\":" << stats.records_in
        << ",\"sessions_emitted\":" << stats.sessions_emitted
        << ",\"dead_letters\":" << stats.dead_letters
        << ",\"records_shed\":" << stats.records_shed
        << ",\"queue_depth\":" << engine_->ShardQueueDepth(i)
        << ",\"watermark_seconds\":" << engine_->ShardWatermarkSeconds(i)
        << "}";
  }
  out << "]},\"dead_letters\":{\"attached\":"
      << (dead_letters_ != nullptr ? "true" : "false") << ",\"size\":"
      << (dead_letters_ != nullptr ? dead_letters_->size() : 0)
      << ",\"total_offered\":"
      << (dead_letters_ != nullptr ? dead_letters_->total_offered() : 0)
      << ",\"records_covered\":"
      << (dead_letters_ != nullptr ? dead_letters_->records_covered() : 0)
      << ",\"overflow_dropped\":"
      << (dead_letters_ != nullptr ? dead_letters_->overflow_dropped() : 0)
      << "},\"mining\":{\"enabled\":"
      << (engine_->mining() != nullptr ? "true" : "false") << ",\"sessions_seen\":"
      << (engine_->mining() != nullptr ? engine_->mining()->sessions_seen()
                                       : 0)
      << ",\"queue_depth\":"
      << (engine_->mining() != nullptr ? engine_->mining()->queued_batches()
                                       : 0)
      << "}}";
  return out.str();
}

Status LogServer::HandleHttpReadable(Connection* conn) {
  obs::ScopedSpan span(tracer_, "http", 0, conn->serial);
  Result<ReadResult> read_result =
      ReadSome(conn->fd, read_buffer_.data(), read_buffer_.size());
  if (!read_result.ok()) {
    CloseConnection(conn, "http read error");
    return Status::OK();
  }
  const ReadResult read = *read_result;
  if (read.would_block) return Status::OK();
  if (read.bytes == 0) {
    if (read.eof) CloseConnection(conn, "http eof");
    return Status::OK();
  }
  conn->http_buffer.append(read_buffer_.data(), read.bytes);
  HttpRequest request;
  switch (ParseHttpRequest(conn->http_buffer, &request)) {
    case HttpParseOutcome::kNeedMore:
      return Status::OK();  // deadline still armed; wait for the rest
    case HttpParseOutcome::kTooLarge:
      Reply(conn,
            RenderHttpResponse(413, "text/plain", "request too large\n"));
      CloseConnection(conn, "http oversized");
      return Status::OK();
    case HttpParseOutcome::kBad:
      Reply(conn, RenderHttpResponse(400, "text/plain", "bad request\n"));
      CloseConnection(conn, "http bad request");
      return Status::OK();
    case HttpParseOutcome::kOk:
      break;
  }
  m_http_requests_.Increment();
  std::string response;
  if (request.method != "GET") {
    response = RenderHttpResponse(400, "text/plain", "only GET is served\n");
  } else if (request.target == "/metrics") {
    response =
        options_.metrics == nullptr
            ? RenderHttpResponse(503, "text/plain", "metrics disabled\n")
            : RenderHttpResponse(
                  200, "text/plain; version=0.0.4",
                  obs::ToPrometheusText(options_.metrics->Snapshot()));
  } else if (request.target == "/healthz") {
    const std::string problems = HealthProblems();
    response = problems.empty()
                   ? RenderHttpResponse(200, "text/plain", "ok\n")
                   : RenderHttpResponse(503, "text/plain", problems + "\n");
  } else if (request.target == "/statusz") {
    response =
        RenderHttpResponse(200, "application/json", StatuszJson() + "\n");
  } else {
    response = RenderHttpResponse(404, "text/plain", "unknown path\n");
  }
  Reply(conn, response);
  CloseConnection(conn, "http served");
  return Status::OK();
}

Status LogServer::HandleReadable(Connection* conn, bool* made_progress) {
  if (conn->http) {
    if (made_progress != nullptr) *made_progress = false;
    return HandleHttpReadable(conn);
  }
  obs::ScopedSpan span(tracer_, "read", 0, conn->serial);
  if (made_progress != nullptr) *made_progress = false;
  const std::uint64_t now = NowMs();
  std::size_t capacity = read_buffer_.size();
  if (!conn->admin && !stopping_ && !conn->bucket.unlimited()) {
    const std::uint64_t available = conn->bucket.Available(now);
    if (available == 0) {
      // Rate quota spent: withhold this fd from poll until the bucket
      // refills. The kernel buffer fills, TCP pushes back on this
      // producer alone; nobody else notices.
      conn->paused = true;
      conn->resume_at_ms = conn->bucket.WhenAvailable(1, now);
      if (conn->paused_since_ms == 0) conn->paused_since_ms = now;
      ArmDeadline(conn);
      return Status::OK();
    }
    capacity = std::min<std::size_t>(capacity, available);
  }
  Result<ReadResult> read_result =
      ReadSome(conn->fd, read_buffer_.data(), capacity);
  if (!read_result.ok()) {
    // A peer that resets (or any per-socket read failure) costs exactly
    // one connection: salvage complete lines, quarantine the carried
    // partial, close. Never fatal to the serve loop.
    obs::LogWarn("net.read")("serial", conn->serial)(
        "error", read_result.status().ToString());
    if (!conn->admin && !conn->awaiting_handshake) {
      WUM_RETURN_NOT_OK(PumpConnection(conn));
    }
    DeadLetterPartial(conn, read_result.status());
    CloseConnection(conn, read_result.status().IsConnectionReset()
                              ? "peer reset"
                              : "read error");
    return Status::OK();
  }
  const ReadResult read = *read_result;
  if (made_progress != nullptr) *made_progress = !read.would_block;
  if (read.would_block) return Status::OK();
  if (read.bytes > 0) {
    conn->last_activity_ms = now;
    if (!conn->admin) conn->bucket.Consume(read.bytes, now);
    const std::string_view bytes(read_buffer_.data(), read.bytes);
    if (conn->admin) {
      conn->admin_buffer.append(bytes);
      if (conn->admin_buffer.size() > kMaxAdminLineBytes) {
        CloseConnection(conn, "oversized admin command");
        return Status::OK();
      }
      std::size_t newline;
      while (!conn->closing && !quiesced_ &&
             (newline = conn->admin_buffer.find('\n')) != std::string::npos) {
        const std::string line = conn->admin_buffer.substr(0, newline);
        conn->admin_buffer.erase(0, newline + 1);
        WUM_RETURN_NOT_OK(HandleAdminLine(conn, line));
      }
      ArmDeadline(conn);
      return Status::OK();
    }
    Status handled;
    if (conn->awaiting_handshake) {
      conn->handshake_buffer.append(bytes);
      handled = HandleHandshakeBuffer(conn);
    } else {
      handled = HandleData(conn, bytes);
    }
    WUM_RETURN_NOT_OK(handled);
    if (!conn->closing && !stopping_) {
      // Track how long an incomplete line has been outstanding: the
      // clock starts when the partial appears and does NOT reset on
      // further dribble — a one-byte-at-a-time peer cannot extend its
      // read deadline by dribbling.
      const bool has_partial =
          conn->lines.buffered_bytes() > 0 ||
          (conn->awaiting_handshake && !conn->handshake_buffer.empty());
      if (!has_partial) {
        conn->partial_since_ms = 0;
      } else if (conn->partial_since_ms == 0) {
        conn->partial_since_ms = now;
      }
      const ClientQuota& quota = options_.client_quota;
      if (quota.max_buffered_bytes != 0 &&
          conn->lines.buffered_bytes() + conn->handshake_buffer.size() >
              quota.max_buffered_bytes) {
        WUM_RETURN_NOT_OK(
            DegradeConnection(conn, "buffer quota exceeded", now));
      } else if (options_.ingest_budget_bytes != 0 &&
                 BufferedBytesTotal() > options_.ingest_budget_bytes) {
        WUM_RETURN_NOT_OK(
            DegradeConnection(conn, "ingest budget exceeded", now));
      }
    }
    if (!conn->closing) ArmDeadline(conn);
    return Status::OK();
  }
  if (read.eof) {
    if (!conn->admin) {
      if (conn->awaiting_handshake && !conn->handshake_buffer.empty()) {
        // A stream that never contained a newline: the whole buffer is
        // the final unterminated line.
        const std::string buffered = std::move(conn->handshake_buffer);
        conn->handshake_buffer.clear();
        conn->awaiting_handshake = false;
        WUM_RETURN_NOT_OK(HandleData(conn, buffered));
      }
      conn->lines.Close();
      WUM_RETURN_NOT_OK(PumpConnection(conn));
    }
    CloseConnection(conn, "eof");
  }
  return Status::OK();
}

Status LogServer::Serve() {
  obs::LogInfo("net.serve")("port", port_)("admin_port", admin_port_)(
      "http_port", http_port_)("resumed_clients", client_offsets_.size());
  started_at_ms_ = NowMs();
  Status result = Status::OK();
  std::vector<pollfd> pollfds;
  std::vector<Connection*> pollconns;
  while (!quiesced_) {
    pollfds.clear();
    pollconns.clear();
    pollfds.push_back(pollfd{stop_read_.get(), POLLIN, 0});
    pollconns.push_back(nullptr);
    if (data_listener_.valid() && !stopping_) {
      pollfds.push_back(pollfd{data_listener_.get(), POLLIN, 0});
      pollconns.push_back(nullptr);
    }
    pollfds.push_back(pollfd{admin_listener_.get(), POLLIN, 0});
    pollconns.push_back(nullptr);
    if (http_listener_.valid()) {
      pollfds.push_back(pollfd{http_listener_.get(), POLLIN, 0});
      pollconns.push_back(nullptr);
    }
    for (auto& conn : connections_) {
      // Paused connections (rate quota spent, kBlock degradation) stay
      // open but out of the poll set: per-producer TCP pushback.
      if (conn->closing || conn->paused) continue;
      pollfds.push_back(pollfd{conn->fd.get(), POLLIN, 0});
      pollconns.push_back(conn.get());
    }
    // Sleep until the next wheel deadline (a lower bound — waking early
    // and re-arming is fine), or forever when nothing is scheduled.
    int timeout_ms = -1;
    if (const std::optional<std::uint64_t> next = wheel_.NextDeadline()) {
      const std::uint64_t now = NowMs();
      timeout_ms = *next <= now
                       ? 0
                       : static_cast<int>(
                             std::min<std::uint64_t>(*next - now, 60000));
    }
    const int rc = ::poll(pollfds.data(),
                          static_cast<nfds_t>(pollfds.size()),
                          timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      result = Status::IoError("poll: " + std::string(std::strerror(errno)));
      break;
    }
    Status step = Status::OK();
    for (std::size_t i = 0; i < pollfds.size() && step.ok(); ++i) {
      if ((pollfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = pollfds[i].fd;
      if (fd == stop_read_.get()) {
        char drain[64];
        (void)ReadSome(stop_read_, drain, sizeof(drain));
        step = DoQuiesce(nullptr);
      } else if (data_listener_.valid() && fd == data_listener_.get()) {
        step = AcceptPending(&data_listener_, /*admin=*/false);
      } else if (fd == admin_listener_.get()) {
        step = AcceptPending(&admin_listener_, /*admin=*/true);
      } else if (http_listener_.valid() && fd == http_listener_.get()) {
        step = AcceptHttpPending();
      } else if (pollconns[i] != nullptr && !pollconns[i]->closing) {
        step = HandleReadable(pollconns[i]);
      }
    }
    if (step.ok() && !quiesced_) {
      // Fire lapsed deadlines after fresh reads: data that arrived in
      // this very poll round counts as activity before expiry judges.
      const std::uint64_t now = NowMs();
      for (const std::uint64_t serial : wheel_.Advance(now)) {
        Connection* conn = FindBySerial(serial);
        if (conn == nullptr || conn->closing) continue;
        step = HandleDeadline(conn, now);
        if (!step.ok()) break;
      }
    }
    if (!step.ok()) {
      result = step;
      break;
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const auto& c) { return c->closing; }),
        connections_.end());
  }
  connections_.clear();
  obs::LogInfo("net.serve_done")("ok", result.ok() ? 1 : 0)(
      "accepted", stats_.connections_accepted)("bytes", stats_.bytes_read);
  return result;
}

LogServer::~LogServer() = default;

void LogServer::RequestStop() {
  if (stop_write_.valid()) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_write_.get(), &byte, 1);
  }
}

}  // namespace wum::net

#else  // non-POSIX: the network front end is unavailable.

namespace wum::net {

struct LogServer::Connection {};

LogServer::~LogServer() = default;

Result<std::unique_ptr<LogServer>> LogServer::Start(ServerOptions, StreamEngine*,
                                                    DeadLetterQueue*,
                                                    ClientOffsets) {
  return Status::Unimplemented("websra_serve requires a POSIX platform");
}

Status LogServer::Serve() {
  return Status::Unimplemented("websra_serve requires a POSIX platform");
}

void LogServer::RequestStop() {}

}  // namespace wum::net

#endif
