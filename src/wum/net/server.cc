#include "wum/net/server.h"

#include <algorithm>
#include <utility>

#include "wum/ckpt/codec.h"
#include "wum/obs/log.h"

namespace wum::net {

namespace {
// sink_state layout: magic uvarint, journal state string, offset count,
// then (client-id, offset) pairs. The magic guards against feeding a
// websra_sessionize sink_state (a bare decimal length) to the server.
constexpr std::uint64_t kServeSinkStateMagic = 0x53525645;  // "SRVE"
}  // namespace

std::string EncodeServeSinkState(std::string_view journal_state,
                                 const ClientOffsets& offsets) {
  ckpt::Encoder encoder;
  encoder.PutUvarint(kServeSinkStateMagic);
  encoder.PutString(journal_state);
  encoder.PutUvarint(offsets.size());
  for (const auto& [client_id, offset] : offsets) {
    encoder.PutString(client_id);
    encoder.PutUvarint(offset);
  }
  return encoder.Release();
}

Status DecodeServeSinkState(std::string_view encoded,
                            std::string* journal_state,
                            ClientOffsets* offsets) {
  ckpt::Decoder decoder(encoded);
  WUM_ASSIGN_OR_RETURN(const std::uint64_t magic, decoder.GetUvarint());
  if (magic != kServeSinkStateMagic) {
    return Status::ParseError(
        "sink_state was not written by websra_serve (bad magic)");
  }
  WUM_ASSIGN_OR_RETURN(*journal_state, decoder.GetString());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t count, decoder.GetUvarint());
  offsets->clear();
  offsets->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WUM_ASSIGN_OR_RETURN(std::string client_id, decoder.GetString());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t offset, decoder.GetUvarint());
    offsets->emplace_back(std::move(client_id), offset);
  }
  return decoder.ExpectEnd();
}

}  // namespace wum::net

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wum/clf/clf_parser.h"

namespace wum::net {

namespace {

constexpr std::size_t kMaxAdminLineBytes = 4096;
constexpr std::string_view kHelloPrefix = "HELLO ";

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

/// One accepted socket: either a data producer (LineBuffer + parser +
/// replay offset state) or an admin session (command buffer).
struct LogServer::Connection {
  Connection(std::size_t max_line_bytes, obs::MetricRegistry* metrics)
      : lines(max_line_bytes), parser(metrics) {}

  Fd fd;
  bool admin = false;
  bool closing = false;
  std::uint64_t serial = 0;

  // Data state.
  ingest::LineBuffer lines;
  ClfParser parser;
  bool awaiting_handshake = true;
  std::string handshake_buffer;
  std::string client_id;       // empty = anonymous (no replay tracking)
  std::uint64_t base_offset = 0;    // bytes durable before this connection
  std::uint64_t skip_remaining = 0; // replayed bytes left to discard

  // Admin state.
  std::string admin_buffer;
};

Result<std::unique_ptr<LogServer>> LogServer::Start(
    ServerOptions options, StreamEngine* engine, DeadLetterQueue* dead_letters,
    ClientOffsets resumed_offsets) {
  if (engine == nullptr) {
    return Status::InvalidArgument("LogServer requires a StreamEngine");
  }
  // The server drives checkpoint cadence itself at connection-pump
  // boundaries (when every consumed byte has been offered), so the
  // per-client offsets in the manifest are exact; a driver-internal
  // mid-batch checkpoint would snapshot offsets for bytes not yet
  // offered. The cadence value moves from the driver options to the
  // server.
  ingest::IngestOptions driver_options = options.ingest;
  driver_options.checkpoint_every_records = 0;
  std::unique_ptr<LogServer> server(new LogServer(
      std::move(options), engine, dead_letters, std::move(resumed_offsets)));
  driver_options.sink_state = [raw = server.get()]() {
    return raw->ComposeSinkState();
  };
  WUM_ASSIGN_OR_RETURN(ingest::IngestDriver driver,
                       ingest::IngestDriver::Create(engine,
                                                    std::move(driver_options)));
  server->driver_.emplace(std::move(driver));
  WUM_RETURN_NOT_OK(server->BindListeners());
  return server;
}

LogServer::LogServer(ServerOptions options, StreamEngine* engine,
                     DeadLetterQueue* dead_letters,
                     ClientOffsets resumed_offsets)
    : options_(std::move(options)),
      engine_(engine),
      dead_letters_(dead_letters),
      client_offsets_(std::move(resumed_offsets)),
      read_buffer_(std::max<std::size_t>(options_.read_buffer_bytes, 1)),
      tracer_(obs::TracerIn(options_.trace)),
      m_accepted_(obs::CounterIn(options_.metrics,
                                 "net.connections_accepted")),
      m_closed_(obs::CounterIn(options_.metrics, "net.connections_closed")),
      m_handshakes_(obs::CounterIn(options_.metrics, "net.handshakes")),
      m_bytes_read_(obs::CounterIn(options_.metrics, "net.bytes_read")),
      m_shed_(obs::CounterIn(options_.metrics, "net.records_shed")),
      m_admin_(obs::CounterIn(options_.metrics, "net.admin_commands")) {}

Status LogServer::BindListeners() {
  WUM_ASSIGN_OR_RETURN(data_listener_,
                       ListenTcp(options_.host, options_.port));
  WUM_RETURN_NOT_OK(SetNonBlocking(data_listener_, true));
  WUM_ASSIGN_OR_RETURN(port_, BoundPort(data_listener_));
  WUM_ASSIGN_OR_RETURN(admin_listener_,
                       ListenTcp(options_.host, options_.admin_port));
  WUM_RETURN_NOT_OK(SetNonBlocking(admin_listener_, true));
  WUM_ASSIGN_OR_RETURN(admin_port_, BoundPort(admin_listener_));
  WUM_ASSIGN_OR_RETURN(auto pipe, MakePipe());
  stop_read_ = std::move(pipe.first);
  stop_write_ = std::move(pipe.second);
  return Status::OK();
}

Result<std::string> LogServer::ComposeSinkState() {
  std::string journal_state;
  if (options_.journal_state != nullptr) {
    WUM_ASSIGN_OR_RETURN(journal_state, options_.journal_state());
  }
  return EncodeServeSinkState(journal_state, client_offsets_);
}

std::uint64_t LogServer::OffsetFor(const std::string& client_id) const {
  for (const auto& [id, offset] : client_offsets_) {
    if (id == client_id) return offset;
  }
  return 0;
}

void LogServer::RecordOffset(const Connection& conn) {
  if (conn.client_id.empty()) return;
  const std::uint64_t offset = conn.base_offset + conn.lines.consumed_bytes();
  for (auto& [id, stored] : client_offsets_) {
    if (id == conn.client_id) {
      stored = offset;
      return;
    }
  }
  client_offsets_.emplace_back(conn.client_id, offset);
}

Status LogServer::AcceptPending(Fd* listener, bool admin) {
  while (true) {
    WUM_ASSIGN_OR_RETURN(Fd accepted, Accept(*listener));
    if (!accepted.valid()) return Status::OK();  // drained
    const std::size_t data_connections = static_cast<std::size_t>(
        std::count_if(connections_.begin(), connections_.end(),
                      [](const auto& c) { return !c->admin; }));
    if (!admin && data_connections >= options_.max_connections) {
      // Over capacity: refuse loudly rather than queueing invisible
      // producers (closing the socket is the backpressure signal).
      obs::LogWarn("net.accept")("refused", "max_connections")(
          "limit", options_.max_connections);
      continue;
    }
    WUM_RETURN_NOT_OK(SetNonBlocking(accepted, true));
    auto conn = std::make_unique<Connection>(options_.max_line_bytes,
                                             options_.metrics);
    conn->fd = std::move(accepted);
    conn->admin = admin;
    conn->serial = ++stats_.connections_accepted;
    m_accepted_.Increment();
    tracer_.Instant("accept", 0, conn->serial);
    if (!admin && dead_letters_ != nullptr) {
      // Malformed lines quarantine to the shared dead-letter channel,
      // tagged with the producer they came from.
      Connection* raw = conn.get();
      DeadLetterQueue* letters = dead_letters_;
      conn->parser.set_reject_handler(
          [raw, letters](std::uint64_t line_number, std::string_view raw_line,
                         const Status& reason) {
            DeadLetter letter;
            letter.stage = DeadLetter::Stage::kParse;
            letter.reason = reason;
            letter.detail =
                (raw->client_id.empty() ? std::string("anonymous")
                                        : raw->client_id) +
                " line " + std::to_string(line_number) + ": " +
                std::string(raw_line.substr(0, 200));
            letters->Offer(std::move(letter));
          });
    }
    obs::LogDebug("net.accept")("serial", conn->serial)(
        "kind", admin ? "admin" : "data");
    connections_.push_back(std::move(conn));
  }
}

void LogServer::CloseConnection(Connection* conn, const char* why) {
  if (conn->closing) return;
  conn->closing = true;
  conn->fd.reset();
  ++stats_.connections_closed;
  m_closed_.Increment();
  obs::LogDebug("net.close")("serial", conn->serial)("why", why);
}

Status LogServer::PumpConnection(Connection* conn) {
  const std::uint64_t shed_before = engine_->TotalStats().records_shed;
  const Status status = driver_->Pump(&conn->lines, &conn->parser);
  const std::uint64_t shed_delta =
      engine_->TotalStats().records_shed - shed_before;
  if (shed_delta > 0) {
    // The engine counted the drop; keep the conservation invariant
    // (emitted + dead-lettered == accepted) auditable by attributing
    // the shed records to their producer in the dead-letter channel.
    stats_.records_shed += shed_delta;
    m_shed_.Increment(shed_delta);
    obs::LogWarn("net.shed")("serial", conn->serial)("records", shed_delta);
    if (dead_letters_ != nullptr) {
      DeadLetter letter;
      letter.stage = DeadLetter::Stage::kRecord;
      letter.shard = 0;
      letter.reason = Status::FailedPrecondition(
          "shard queue full: records shed under OfferPolicy::kShed");
      letter.detail = conn->client_id.empty() ? std::string("anonymous")
                                              : conn->client_id;
      letter.records_covered = shed_delta;
      dead_letters_->Offer(std::move(letter));
    }
  }
  RecordOffset(*conn);
  WUM_RETURN_NOT_OK(status);
  // Server-driven checkpoint cadence: only at pump boundaries, where
  // consumed bytes == offered records, so the offsets just recorded are
  // exactly what the engine has seen.
  const std::uint64_t cadence = options_.ingest.checkpoint_every_records;
  if (cadence > 0 && driver_->checkpointing() &&
      driver_->records_offered() - records_at_last_checkpoint_ >= cadence) {
    WUM_RETURN_NOT_OK(driver_->CheckpointNow());
    records_at_last_checkpoint_ = driver_->records_offered();
  }
  return Status::OK();
}

Status LogServer::HandleData(Connection* conn, std::string_view bytes) {
  stats_.bytes_read += bytes.size();
  m_bytes_read_.Increment(bytes.size());
  if (conn->skip_remaining > 0) {
    // Replay of bytes a checkpoint already covers: discard server-side,
    // so resume is exactly-once even when the client re-sends from
    // byte zero.
    const std::size_t skip =
        std::min<std::size_t>(conn->skip_remaining, bytes.size());
    conn->skip_remaining -= skip;
    bytes.remove_prefix(skip);
  }
  if (bytes.empty()) return Status::OK();
  const Status append = conn->lines.Append(bytes);
  if (!append.ok()) {
    if (dead_letters_ != nullptr) {
      DeadLetter letter;
      letter.stage = DeadLetter::Stage::kParse;
      letter.reason = append;
      letter.detail = conn->client_id.empty() ? std::string("anonymous")
                                              : conn->client_id;
      dead_letters_->Offer(std::move(letter));
    }
    obs::LogWarn("net.overlong")("serial", conn->serial)(
        "error", append.message());
    WUM_RETURN_NOT_OK(PumpConnection(conn));  // salvage complete lines
    CloseConnection(conn, "overlong line");
    return Status::OK();
  }
  return PumpConnection(conn);
}

Status LogServer::HandleHandshakeBuffer(Connection* conn) {
  const std::size_t newline = conn->handshake_buffer.find('\n');
  if (newline == std::string::npos) {
    if (conn->handshake_buffer.size() > kMaxAdminLineBytes &&
        conn->handshake_buffer.compare(0, kHelloPrefix.size(),
                                       kHelloPrefix) == 0) {
      CloseConnection(conn, "oversized handshake");
    } else if (conn->handshake_buffer.size() > options_.max_line_bytes) {
      CloseConnection(conn, "oversized first line");
    }
    return Status::OK();
  }
  const std::string buffered = std::move(conn->handshake_buffer);
  conn->handshake_buffer.clear();
  conn->awaiting_handshake = false;
  const std::string_view first_line =
      StripCr(std::string_view(buffered).substr(0, newline));
  if (first_line.size() >= kHelloPrefix.size() &&
      first_line.substr(0, kHelloPrefix.size()) == kHelloPrefix) {
    const std::string client_id(first_line.substr(kHelloPrefix.size()));
    if (client_id.empty()) {
      (void)WriteAll(conn->fd, "ERR empty client-id\n");
      CloseConnection(conn, "empty client-id");
      return Status::OK();
    }
    for (const auto& other : connections_) {
      if (other.get() != conn && !other->closing &&
          other->client_id == client_id) {
        (void)WriteAll(conn->fd, "ERR duplicate client-id\n");
        CloseConnection(conn, "duplicate client-id");
        return Status::OK();
      }
    }
    conn->client_id = client_id;
    conn->base_offset = OffsetFor(client_id);
    conn->skip_remaining = conn->base_offset;
    ++stats_.handshakes;
    m_handshakes_.Increment();
    obs::LogInfo("net.handshake")("client", client_id)(
        "skip", conn->base_offset);
    WUM_RETURN_NOT_OK(WriteAll(
        conn->fd, "OK " + std::to_string(conn->base_offset) + "\n"));
    // Anything the client pipelined after HELLO is data.
    return HandleData(conn,
                      std::string_view(buffered).substr(newline + 1));
  }
  // No handshake: the first line is already data. Anonymous producers
  // get no replay tracking (documented at-most-once on restart).
  return HandleData(conn, buffered);
}

Status LogServer::HandleAdminLine(Connection* conn, std::string_view line) {
  line = StripCr(line);
  if (line.empty()) return Status::OK();
  ++stats_.admin_commands;
  m_admin_.Increment();
  obs::LogInfo("net.admin")("command", std::string(line));
  if (line == "PING") {
    return WriteAll(conn->fd, "OK\n");
  }
  if (line == "STATS") {
    if (options_.metrics == nullptr) {
      return WriteAll(conn->fd, "ERR metrics disabled\n");
    }
    return WriteAll(conn->fd,
                    options_.metrics->Snapshot().ToJsonLine() + "\n");
  }
  if (line == "CHECKPOINT") {
    const Status status = driver_->CheckpointNow();
    if (!status.ok()) {
      return WriteAll(conn->fd, "ERR " + status.message() + "\n");
    }
    records_at_last_checkpoint_ = driver_->records_offered();
    return WriteAll(conn->fd,
                    "OK records_seen=" +
                        std::to_string(engine_->records_seen()) + "\n");
  }
  if (line == "QUIESCE") {
    std::string detail;
    const Status status = DoQuiesce(&detail);
    if (!status.ok()) {
      (void)WriteAll(conn->fd, "ERR " + status.message() + "\n");
      return status;
    }
    WUM_RETURN_NOT_OK(WriteAll(
        conn->fd, detail.empty() ? std::string("OK\n") : "OK " + detail + "\n"));
    return Status::OK();
  }
  return WriteAll(conn->fd, "ERR unknown command: " + std::string(line) + "\n");
}

Status LogServer::DoQuiesce(std::string* detail) {
  if (quiesced_) {
    if (detail != nullptr) *detail = "already quiesced";
    return Status::OK();
  }
  obs::LogInfo("net.quiesce")("connections", connections_.size());
  stopping_ = true;
  data_listener_.reset();
  // Drain every data producer: first whatever the kernel already holds
  // for the socket (a producer that finished and closed just before the
  // QUIESCE arrived must not lose its tail to ordering), then the
  // buffered remainder (the final unterminated line included), and
  // close. Bytes a still-live producer sends after its socket stops
  // being read are dropped by the close — identified clients recover
  // them through replay.
  for (auto& conn : connections_) {
    if (conn->admin || conn->closing) continue;
    bool progress = true;
    while (progress && !conn->closing) {
      WUM_RETURN_NOT_OK(HandleReadable(conn.get(), &progress));
    }
    if (conn->closing) continue;  // EOF path already pumped the tail
    if (conn->awaiting_handshake && !conn->handshake_buffer.empty()) {
      // The producer never completed a line; treat the buffer as data.
      const std::string buffered = std::move(conn->handshake_buffer);
      conn->handshake_buffer.clear();
      conn->awaiting_handshake = false;
      WUM_RETURN_NOT_OK(HandleData(conn.get(), buffered));
    }
    conn->lines.Close();
    WUM_RETURN_NOT_OK(PumpConnection(conn.get()));
    CloseConnection(conn.get(), "quiesce");
  }
  WUM_RETURN_NOT_OK(engine_->Finish());
  if (options_.on_quiesce != nullptr) {
    WUM_ASSIGN_OR_RETURN(const std::string hook_detail, options_.on_quiesce());
    if (detail != nullptr) *detail = hook_detail;
  }
  quiesced_ = true;
  return Status::OK();
}

Status LogServer::HandleReadable(Connection* conn, bool* made_progress) {
  obs::ScopedSpan span(tracer_, "read", 0, conn->serial);
  WUM_ASSIGN_OR_RETURN(
      const ReadResult read,
      ReadSome(conn->fd, read_buffer_.data(), read_buffer_.size()));
  if (made_progress != nullptr) *made_progress = !read.would_block;
  if (read.would_block) return Status::OK();
  if (read.bytes > 0) {
    const std::string_view bytes(read_buffer_.data(), read.bytes);
    if (conn->admin) {
      conn->admin_buffer.append(bytes);
      if (conn->admin_buffer.size() > kMaxAdminLineBytes) {
        CloseConnection(conn, "oversized admin command");
        return Status::OK();
      }
      std::size_t newline;
      while (!conn->closing && !quiesced_ &&
             (newline = conn->admin_buffer.find('\n')) != std::string::npos) {
        const std::string line = conn->admin_buffer.substr(0, newline);
        conn->admin_buffer.erase(0, newline + 1);
        WUM_RETURN_NOT_OK(HandleAdminLine(conn, line));
      }
      return Status::OK();
    }
    if (conn->awaiting_handshake) {
      conn->handshake_buffer.append(bytes);
      return HandleHandshakeBuffer(conn);
    }
    return HandleData(conn, bytes);
  }
  if (read.eof) {
    if (!conn->admin) {
      if (conn->awaiting_handshake && !conn->handshake_buffer.empty()) {
        // A stream that never contained a newline: the whole buffer is
        // the final unterminated line.
        const std::string buffered = std::move(conn->handshake_buffer);
        conn->handshake_buffer.clear();
        conn->awaiting_handshake = false;
        WUM_RETURN_NOT_OK(HandleData(conn, buffered));
      }
      conn->lines.Close();
      WUM_RETURN_NOT_OK(PumpConnection(conn));
    }
    CloseConnection(conn, "eof");
  }
  return Status::OK();
}

Status LogServer::Serve() {
  obs::LogInfo("net.serve")("port", port_)("admin_port", admin_port_)(
      "resumed_clients", client_offsets_.size());
  Status result = Status::OK();
  std::vector<pollfd> pollfds;
  std::vector<Connection*> pollconns;
  while (!quiesced_) {
    pollfds.clear();
    pollconns.clear();
    pollfds.push_back(pollfd{stop_read_.get(), POLLIN, 0});
    pollconns.push_back(nullptr);
    if (data_listener_.valid() && !stopping_) {
      pollfds.push_back(pollfd{data_listener_.get(), POLLIN, 0});
      pollconns.push_back(nullptr);
    }
    pollfds.push_back(pollfd{admin_listener_.get(), POLLIN, 0});
    pollconns.push_back(nullptr);
    for (auto& conn : connections_) {
      if (conn->closing) continue;
      pollfds.push_back(pollfd{conn->fd.get(), POLLIN, 0});
      pollconns.push_back(conn.get());
    }
    const int rc = ::poll(pollfds.data(),
                          static_cast<nfds_t>(pollfds.size()),
                          /*timeout_ms=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      result = Status::IoError("poll: " + std::string(std::strerror(errno)));
      break;
    }
    Status step = Status::OK();
    for (std::size_t i = 0; i < pollfds.size() && step.ok(); ++i) {
      if ((pollfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = pollfds[i].fd;
      if (fd == stop_read_.get()) {
        char drain[64];
        (void)ReadSome(stop_read_, drain, sizeof(drain));
        step = DoQuiesce(nullptr);
      } else if (data_listener_.valid() && fd == data_listener_.get()) {
        step = AcceptPending(&data_listener_, /*admin=*/false);
      } else if (fd == admin_listener_.get()) {
        step = AcceptPending(&admin_listener_, /*admin=*/true);
      } else if (pollconns[i] != nullptr && !pollconns[i]->closing) {
        step = HandleReadable(pollconns[i]);
      }
    }
    if (!step.ok()) {
      result = step;
      break;
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const auto& c) { return c->closing; }),
        connections_.end());
  }
  connections_.clear();
  obs::LogInfo("net.serve_done")("ok", result.ok() ? 1 : 0)(
      "accepted", stats_.connections_accepted)("bytes", stats_.bytes_read);
  return result;
}

LogServer::~LogServer() = default;

void LogServer::RequestStop() {
  if (stop_write_.valid()) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_write_.get(), &byte, 1);
  }
}

}  // namespace wum::net

#else  // non-POSIX: the network front end is unavailable.

namespace wum::net {

struct LogServer::Connection {};

LogServer::~LogServer() = default;

Result<std::unique_ptr<LogServer>> LogServer::Start(ServerOptions, StreamEngine*,
                                                    DeadLetterQueue*,
                                                    ClientOffsets) {
  return Status::Unimplemented("websra_serve requires a POSIX platform");
}

Status LogServer::Serve() {
  return Status::Unimplemented("websra_serve requires a POSIX platform");
}

void LogServer::RequestStop() {}

}  // namespace wum::net

#endif
