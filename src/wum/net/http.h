// Minimal HTTP/1.1 GET handling for the observability endpoints: the
// request parser and response renderer shared by the LogServer's
// in-poll-loop scrape port, the standalone MetricsHttpServer (for
// `websra_sessionize --streaming` runs that have no LogServer to ride),
// and the `websra_top` client.
//
// Deliberately *not* a web server: GET only, no keep-alive (every
// response closes the connection), no chunked bodies, a hard cap on the
// request head. That is exactly what a Prometheus scrape needs, and the
// small surface is what lets the same hostility rules as the data port
// (read deadlines, connection caps, bounded buffers) hold trivially.

#ifndef WUM_NET_HTTP_H_
#define WUM_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "wum/common/result.h"
#include "wum/net/socket.h"
#include "wum/obs/metrics.h"

namespace wum::net {

/// Upper bound on the request head (request line + headers). A scrape
/// request is ~100 bytes; anything this large is hostile.
inline constexpr std::size_t kMaxHttpRequestBytes = 8192;

struct HttpRequest {
  std::string method;  // e.g. "GET"
  std::string target;  // e.g. "/metrics" (query string included verbatim)
};

enum class HttpParseOutcome {
  kOk,        // a full request head was parsed
  kNeedMore,  // no terminating blank line yet — read more bytes
  kTooLarge,  // head exceeds kMaxHttpRequestBytes; close the connection
  kBad,       // malformed request line; close the connection
};

/// Parses the request head from `buffer` (everything received so far).
/// On kOk fills `*request`; headers are skipped — the endpoints need
/// only the method and target.
HttpParseOutcome ParseHttpRequest(std::string_view buffer,
                                  HttpRequest* request);

/// Renders a full HTTP/1.1 response with Content-Length and
/// `Connection: close`. `status_code` must be one the module knows
/// (200, 400, 404, 408, 413, 500, 503).
std::string RenderHttpResponse(int status_code, std::string_view content_type,
                               std::string_view body);

struct HttpResponse {
  int status_code = 0;
  std::string body;
};

/// Blocking one-shot HTTP GET, for `websra_top` and tests: connects,
/// sends the request, reads to EOF, and returns status code + body
/// (transport failures are the only errors; a 503 is a valid fetch).
Result<HttpResponse> HttpFetch(const std::string& host, std::uint16_t port,
                               const std::string& target);

/// HttpFetch that insists on a 200 and returns just the body.
Result<std::string> HttpGet(const std::string& host, std::uint16_t port,
                            const std::string& target);

/// Standalone scrape endpoint for tools that have no LogServer poll
/// loop to ride (websra_sessionize --streaming): one background thread,
/// one connection at a time, serving GET /metrics (Prometheus text),
/// /healthz ("ok") and /statusz (a minimal JSON snapshot) from the
/// given registry. The registry must outlive the server.
class MetricsHttpServer {
 public:
  /// Binds host:port (port 0 = kernel-assigned) and starts the thread.
  static Result<std::unique_ptr<MetricsHttpServer>> Start(
      const std::string& host, std::uint16_t port,
      obs::MetricRegistry* registry);

  ~MetricsHttpServer();

  std::uint16_t port() const { return port_; }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

 private:
  MetricsHttpServer() = default;
  void Run();

  Fd listener_;
  Fd stop_read_;
  Fd stop_write_;
  std::uint16_t port_ = 0;
  obs::MetricRegistry* registry_ = nullptr;
  std::thread thread_;
};

}  // namespace wum::net

#endif  // WUM_NET_HTTP_H_
