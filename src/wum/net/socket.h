// Thin POSIX TCP layer for the websra_serve daemon and its clients: an
// RAII file descriptor plus the handful of socket operations the log
// server needs, all returning Status/Result instead of errno. On
// non-POSIX builds every operation returns Unimplemented and
// NetworkingAvailable() is false — the rest of the library builds and
// runs; only the network front end is gated.

#ifndef WUM_NET_SOCKET_H_
#define WUM_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "wum/common/result.h"

namespace wum::net {

/// True when this build carries the POSIX socket implementation.
bool NetworkingAvailable();

/// RAII owner of a POSIX file descriptor (socket or pipe end).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (no-op when invalid).
  void reset();

 private:
  int fd_ = -1;
};

/// Listening TCP socket on host:port (port 0 = kernel-assigned; read it
/// back with BoundPort). SO_REUSEADDR is set so restarts do not trip
/// over TIME_WAIT.
Result<Fd> ListenTcp(const std::string& host, std::uint16_t port,
                     int backlog = 64);

/// Blocking connect to host:port.
Result<Fd> ConnectTcp(const std::string& host, std::uint16_t port);

/// The local port a socket is bound to.
Result<std::uint16_t> BoundPort(const Fd& socket);

Status SetNonBlocking(const Fd& socket, bool enabled);

/// Accepts one pending connection. Returns an invalid Fd (not an error)
/// when the listener is non-blocking and no connection is pending.
Result<Fd> Accept(const Fd& listener);

struct ReadResult {
  std::size_t bytes = 0;     // bytes placed into the buffer
  bool eof = false;          // peer closed its write side
  bool would_block = false;  // non-blocking socket had nothing to read
};

/// One read(2) into `buffer`, with EINTR retried and EAGAIN reported as
/// would_block instead of an error. A peer that reset the connection
/// (ECONNRESET) surfaces as a ConnectionReset status, so callers can
/// close one connection instead of treating the reset as a fatal I/O
/// failure.
Result<ReadResult> ReadSome(const Fd& socket, char* buffer,
                            std::size_t capacity);

/// The write deadline WriteAll applies when the caller does not supply
/// one — matches the old hard-coded poll.
inline constexpr std::chrono::milliseconds kDefaultWriteDeadline{10000};

/// Writes all of `data`, polling for writability when a non-blocking
/// socket fills its send buffer — but never past `deadline` *total*
/// across the whole call. The failure is precise:
///   * DeadlineExceeded — the peer stopped accepting data in time
///     (deadline of zero means one send attempt, no waiting at all:
///     the right mode for best-effort replies to a peer that is by
///     definition not reading).
///   * ConnectionReset — the peer reset the connection (EPIPE /
///     ECONNRESET). Never raises SIGPIPE (MSG_NOSIGNAL / SO_NOSIGPIPE).
///   * IoError — anything else.
Status WriteAll(const Fd& socket, std::string_view data,
                std::chrono::milliseconds deadline = kDefaultWriteDeadline);

/// Closes with an RST instead of a FIN (SO_LINGER zero, then close):
/// the peer's next read or write fails with ECONNRESET. This is how the
/// chaos harness models a crashed or hostile peer; a no-op on an
/// invalid Fd.
void ResetHard(Fd* socket);

/// A pipe: {read end, write end}. Used as the server's self-pipe stop
/// signal (the write end is async-signal-safe to write to).
Result<std::pair<Fd, Fd>> MakePipe();

}  // namespace wum::net

#endif  // WUM_NET_SOCKET_H_
