#include "wum/net/quota.h"

#include <algorithm>
#include <limits>

namespace wum::net {

TokenBucket::TokenBucket(std::uint64_t bytes_per_sec,
                         std::uint64_t burst_bytes, std::uint64_t now_ms)
    : rate_(bytes_per_sec),
      capacity_milli_((burst_bytes != 0 ? burst_bytes : bytes_per_sec) * 1000),
      tokens_milli_(capacity_milli_),  // starts full: a fresh client may burst
      last_refill_ms_(now_ms) {}

void TokenBucket::Refill(std::uint64_t now_ms) {
  if (now_ms <= last_refill_ms_) return;
  const std::uint64_t elapsed = now_ms - last_refill_ms_;
  last_refill_ms_ = now_ms;
  // elapsed_ms * bytes_per_sec == milli-tokens exactly (1000ms * rate
  // per second), no rounding.
  tokens_milli_ = std::min(capacity_milli_, tokens_milli_ + elapsed * rate_);
}

std::uint64_t TokenBucket::Available(std::uint64_t now_ms) {
  if (unlimited()) return std::numeric_limits<std::uint64_t>::max();
  Refill(now_ms);
  return tokens_milli_ / 1000;
}

void TokenBucket::Consume(std::uint64_t bytes, std::uint64_t now_ms) {
  if (unlimited()) return;
  Refill(now_ms);
  const std::uint64_t cost = bytes * 1000;
  tokens_milli_ = cost >= tokens_milli_ ? 0 : tokens_milli_ - cost;
}

std::uint64_t TokenBucket::WhenAvailable(std::uint64_t want,
                                         std::uint64_t now_ms) {
  if (unlimited()) return now_ms;
  Refill(now_ms);
  const std::uint64_t want_milli =
      std::min(want * 1000, capacity_milli_ == 0 ? 1000 : capacity_milli_);
  if (tokens_milli_ >= want_milli) return now_ms;
  const std::uint64_t deficit = want_milli - tokens_milli_;
  // Ceiling division: the wait must cover the whole deficit.
  const std::uint64_t wait_ms = (deficit + rate_ - 1) / rate_;
  return now_ms + wait_ms;
}

}  // namespace wum::net
