// Connection-lifecycle deadlines and per-client resource quotas for the
// log server. Pure policy objects: no sockets, no clocks of their own —
// every method takes the caller's monotonic milliseconds, which is what
// makes them unit-testable with explicit time.

#ifndef WUM_NET_QUOTA_H_
#define WUM_NET_QUOTA_H_

#include <cstdint>

namespace wum::net {

/// Per-connection lifecycle deadlines, all in milliseconds; zero
/// disables the corresponding check.
struct DeadlineConfig {
  /// A connection with no traffic at all (data or admin) for this long
  /// is expired.
  std::uint64_t idle_timeout_ms = 0;
  /// An accepted data connection must complete its HELLO line (or send
  /// its first data) within this long.
  std::uint64_t handshake_timeout_ms = 0;
  /// A connection holding an incomplete line may dribble for at most
  /// this long before the partial is dead-lettered and the peer closed.
  std::uint64_t read_timeout_ms = 0;
  /// Deadline applied to every reply write (see net::WriteAll).
  std::uint64_t write_timeout_ms = 10000;

  bool any_enabled() const {
    return idle_timeout_ms != 0 || handshake_timeout_ms != 0 ||
           read_timeout_ms != 0;
  }
};

/// Per-client resource limits; zero disables a limit.
struct ClientQuota {
  /// Sustained ingest rate per connection, bytes per second.
  std::uint64_t bytes_per_sec = 0;
  /// Bucket depth for bursts above the sustained rate; when zero but
  /// bytes_per_sec is set, one second of rate is used.
  std::uint64_t burst_bytes = 0;
  /// Ceiling on buffered-but-unparsed bytes one connection may hold.
  std::uint64_t max_buffered_bytes = 0;

  bool rate_limited() const { return bytes_per_sec != 0; }
  std::uint64_t effective_burst() const {
    return burst_bytes != 0 ? burst_bytes : bytes_per_sec;
  }
};

/// Token bucket in integer milli-token arithmetic: refill is
/// elapsed_ms * rate milli-tokens, so rates below one byte per
/// millisecond accrue without floating point or truncation-to-zero.
class TokenBucket {
 public:
  /// An unlimited bucket (rate zero): Available() is huge, Consume()
  /// always succeeds, WhenAvailable() is always "now".
  TokenBucket() = default;

  TokenBucket(std::uint64_t bytes_per_sec, std::uint64_t burst_bytes,
              std::uint64_t now_ms);

  bool unlimited() const { return rate_ == 0; }

  /// Whole tokens (bytes) available at `now_ms`, after refill.
  std::uint64_t Available(std::uint64_t now_ms);

  /// Deducts `bytes`; the balance may go negative conceptually — the
  /// bucket clamps at zero, so callers should Consume at most
  /// Available(). Consuming more than available simply empties the
  /// bucket (the overage was already read off the wire; the *next*
  /// read waits for it).
  void Consume(std::uint64_t bytes, std::uint64_t now_ms);

  /// Earliest moment at which `want` tokens will be available, assuming
  /// no intervening consumption. Returns `now_ms` when already
  /// available. `want` above the burst capacity is clamped to it (it
  /// can never be satisfied in one shot otherwise).
  std::uint64_t WhenAvailable(std::uint64_t want, std::uint64_t now_ms);

 private:
  void Refill(std::uint64_t now_ms);

  std::uint64_t rate_ = 0;            // bytes per second; 0 = unlimited
  std::uint64_t capacity_milli_ = 0;  // burst ceiling, milli-tokens
  std::uint64_t tokens_milli_ = 0;
  std::uint64_t last_refill_ms_ = 0;
};

}  // namespace wum::net

#endif  // WUM_NET_QUOTA_H_
