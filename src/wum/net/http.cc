#include "wum/net/http.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "wum/obs/exposition.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

namespace wum::net {

namespace {

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace

HttpParseOutcome ParseHttpRequest(std::string_view buffer,
                                  HttpRequest* request) {
  std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // Lenient: bare-LF requests (telnet, hand-rolled tests) are fine.
    head_end = buffer.find("\n\n");
    if (head_end == std::string_view::npos) {
      return buffer.size() > kMaxHttpRequestBytes ? HttpParseOutcome::kTooLarge
                                                  : HttpParseOutcome::kNeedMore;
    }
  }
  if (head_end > kMaxHttpRequestBytes) return HttpParseOutcome::kTooLarge;
  std::string_view line = buffer.substr(0, buffer.find_first_of("\r\n"));
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) {
    return HttpParseOutcome::kBad;
  }
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos ||
      target_end == method_end + 1) {
    return HttpParseOutcome::kBad;
  }
  const std::string_view version = line.substr(target_end + 1);
  if (version.rfind("HTTP/", 0) != 0) return HttpParseOutcome::kBad;
  request->method = std::string(line.substr(0, method_end));
  request->target =
      std::string(line.substr(method_end + 1, target_end - method_end - 1));
  return HttpParseOutcome::kOk;
}

std::string RenderHttpResponse(int status_code, std::string_view content_type,
                               std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    ReasonPhrase(status_code) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpResponse> HttpFetch(const std::string& host, std::uint16_t port,
                               const std::string& target) {
  WUM_ASSIGN_OR_RETURN(Fd socket, ConnectTcp(host, port));
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  WUM_RETURN_NOT_OK(WriteAll(socket, request));
  std::string raw;
  char buffer[4096];
  while (true) {
    WUM_ASSIGN_OR_RETURN(ReadResult result,
                         ReadSome(socket, buffer, sizeof(buffer)));
    raw.append(buffer, result.bytes);
    if (result.eof) break;
    if (raw.size() > (1u << 24)) {
      return Status::IoError("HTTP response exceeds 16 MiB");
    }
  }
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.rfind("HTTP/", 0) != 0) {
    return Status::IoError("malformed HTTP response from " + host + ":" +
                           std::to_string(port));
  }
  const std::size_t code_start = raw.find(' ');
  if (code_start == std::string::npos || code_start + 4 > line_end) {
    return Status::IoError("malformed HTTP status line");
  }
  HttpResponse response;
  response.status_code = std::atoi(raw.c_str() + code_start + 1);
  std::size_t body_start = raw.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return Status::IoError("HTTP response has no header terminator");
  }
  response.body = raw.substr(body_start + 4);
  return response;
}

Result<std::string> HttpGet(const std::string& host, std::uint16_t port,
                            const std::string& target) {
  WUM_ASSIGN_OR_RETURN(HttpResponse response, HttpFetch(host, port, target));
  if (response.status_code != 200) {
    return Status::IoError("HTTP " + std::to_string(response.status_code) +
                           " for " + target);
  }
  return std::move(response.body);
}

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    const std::string& host, std::uint16_t port,
    obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("MetricsHttpServer: registry is null");
  }
  std::unique_ptr<MetricsHttpServer> server(new MetricsHttpServer());
  WUM_ASSIGN_OR_RETURN(server->listener_, ListenTcp(host, port));
  WUM_ASSIGN_OR_RETURN(server->port_, BoundPort(server->listener_));
  WUM_ASSIGN_OR_RETURN(auto pipe, MakePipe());
  server->stop_read_ = std::move(pipe.first);
  server->stop_write_ = std::move(pipe.second);
  server->registry_ = registry;
  server->thread_ = std::thread([raw = server.get()] { raw->Run(); });
  return server;
}

MetricsHttpServer::~MetricsHttpServer() {
  if (thread_.joinable()) {
#if defined(__unix__) || defined(__APPLE__)
    // Plain write(2): the self-pipe is a pipe, not a socket, so
    // WriteAll's send(2) would fail with ENOTSOCK and never wake Run.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_write_.get(), &byte, 1);
#endif
    thread_.join();
  }
}

void MetricsHttpServer::Run() {
#if defined(__unix__) || defined(__APPLE__)
  while (true) {
    struct pollfd fds[2];
    fds[0] = {listener_.get(), POLLIN, 0};
    fds[1] = {stop_read_.get(), POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    Result<Fd> accepted = Accept(listener_);
    if (!accepted.ok() || !accepted->valid()) continue;
    Fd conn = std::move(*accepted);
    // One connection at a time, bounded read: a scraper that dribbles
    // its request slower than ~5s total is cut off.
    std::string buffer;
    char chunk[1024];
    HttpRequest request;
    HttpParseOutcome outcome = HttpParseOutcome::kNeedMore;
    int waits_left = 50;
    while (outcome == HttpParseOutcome::kNeedMore && waits_left-- > 0) {
      struct pollfd conn_fd = {conn.get(), POLLIN, 0};
      const int ready = ::poll(&conn_fd, 1, 100);
      if (ready < 0 && errno != EINTR) break;
      if (ready <= 0) continue;
      Result<ReadResult> read = ReadSome(conn, chunk, sizeof(chunk));
      if (!read.ok() || read->eof) break;
      buffer.append(chunk, read->bytes);
      outcome = ParseHttpRequest(buffer, &request);
    }
    std::string response;
    if (outcome != HttpParseOutcome::kOk) {
      const int code = outcome == HttpParseOutcome::kTooLarge ? 413
                       : outcome == HttpParseOutcome::kBad    ? 400
                                                              : 408;
      response = RenderHttpResponse(code, "text/plain", "bad request\n");
    } else if (request.method != "GET") {
      response = RenderHttpResponse(400, "text/plain", "GET only\n");
    } else if (request.target == "/metrics") {
      response = RenderHttpResponse(
          200, "text/plain; version=0.0.4",
          obs::ToPrometheusText(registry_->Snapshot()));
    } else if (request.target == "/healthz") {
      response = RenderHttpResponse(200, "text/plain", "ok\n");
    } else if (request.target == "/statusz") {
      response = RenderHttpResponse(200, "application/json",
                                    registry_->Snapshot().ToJsonLine() + "\n");
    } else {
      response = RenderHttpResponse(404, "text/plain", "not found\n");
    }
    [[maybe_unused]] const Status ignored = WriteAll(conn, response);
  }
#endif
}

}  // namespace wum::net
