// Deterministic fault injection for the net layer's chaos harness.
//
// Two wrappers, one schedule idiom (seeded Bernoulli draws, mirroring
// wum::stream::FaultSchedule): ChaosSocket decorates a client-side TCP
// socket and misbehaves on the wire — stalls, one-byte trickle, short
// writes, corrupt bytes, mid-stream RST — while ChaosByteSource
// decorates any ingest::ByteSource and injects the same fault classes
// without a socket, for single-process deterministic pipeline tests.
//
// All decisions flow from the seed; wall-clock time never feeds back
// into the schedule, so a given (seed, input) pair replays the exact
// same fault sequence on every run.

#ifndef WUM_NET_CHAOS_H_
#define WUM_NET_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "wum/common/random.h"
#include "wum/common/result.h"
#include "wum/ingest/byte_source.h"
#include "wum/net/socket.h"

namespace wum::net {

/// Fault mix for one chaos client. Probabilities are per write (socket)
/// or per chunk (byte source); zero disables that fault class.
struct ChaosOptions {
  std::uint64_t seed = 1;
  /// Pause before a write (socket: sleep stall_ms; source: Next()
  /// reports "no data yet").
  double stall_probability = 0.0;
  std::uint64_t stall_ms = 0;
  /// Send one byte per send(2) call (socket) / one line per Next()
  /// (source): maximally fragmented arrival, still lossless.
  bool trickle = false;
  /// Split a write into two sends with a stall between them.
  double short_write_probability = 0.0;
  /// Flip one byte of the payload before sending (never a newline, so
  /// framing survives and the damage lands in exactly one line).
  double corrupt_probability = 0.0;
  /// Abort mid-payload with an RST (socket) / end the stream mid-line
  /// (source) — models a peer dying without a clean FIN.
  double reset_probability = 0.0;
};

/// Counts of faults actually fired — tests assert the schedule engaged.
struct ChaosStats {
  std::uint64_t writes = 0;
  std::uint64_t stalls = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t resets = 0;
  std::uint64_t bytes_sent = 0;
};

/// A client-side socket that misbehaves per its seeded schedule. Owns
/// the Fd; after an injected reset every further Send fails with
/// ConnectionReset.
class ChaosSocket {
 public:
  ChaosSocket(Fd fd, const ChaosOptions& options);

  /// Writes `data` through the fault schedule. Returns ConnectionReset
  /// when the schedule injects an RST (deliberate — the test expects
  /// the server to survive it) or the real peer resets first.
  Status Send(std::string_view data);

  /// Forces an immediate RST regardless of schedule.
  void Reset();

  /// The descriptor, e.g. to go half-open: keep the object alive and
  /// simply stop sending — the socket stays open, the server's idle
  /// deadline is what reaps it.
  Fd& fd() { return fd_; }
  bool alive() const { return fd_.valid(); }
  const ChaosStats& stats() const { return stats_; }

 private:
  Status SendPiece(std::string_view piece);

  Fd fd_;
  ChaosOptions options_;
  Rng rng_;
  ChaosStats stats_;
  std::string scratch_;
};

/// A ByteSource decorator injecting the same fault classes in-process:
/// stalls surface as "no chunk available yet" (callers must pump until
/// exhausted(), exactly like a socket-fed LineBuffer), trickle serves
/// one line per Next(), corruption flips a non-newline byte, and an
/// injected reset cuts the stream mid-line — the cut tail arrives as a
/// final unterminated chunk, honoring the ByteSource chunk contract.
class ChaosByteSource final : public ingest::ByteSource {
 public:
  ChaosByteSource(ingest::ByteSource* inner, const ChaosOptions& options);

  Result<std::optional<std::string_view>> Next() override;
  bool exhausted() const override;

  const ChaosStats& stats() const { return stats_; }
  /// True once an injected reset ended the stream early.
  bool reset_injected() const { return reset_injected_; }

 private:
  ingest::ByteSource* inner_;  // not owned
  ChaosOptions options_;
  Rng rng_;
  ChaosStats stats_;
  std::deque<std::string> queued_;  // trickle-split lines awaiting serve
  std::string serving_;             // backing store of the returned view
  bool reset_injected_ = false;
};

}  // namespace wum::net

#endif  // WUM_NET_CHAOS_H_
