#include "wum/net/timer_wheel.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace wum::net {

std::uint64_t MonotonicMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(slots == 0 ? 1 : slots) {}

void TimerWheel::Schedule(std::uint64_t key, std::uint64_t deadline_ms) {
  // The old slot entry (if any) goes stale; Advance skips it because
  // the map is authoritative. A deadline already in the past is bucketed
  // at the scan cursor so the next Advance still sees it.
  deadlines_[key] = deadline_ms;
  const std::uint64_t slot_ms =
      std::max(deadline_ms, current_tick_ * tick_ms_);
  slots_[SlotFor(slot_ms)].push_back(key);
  if (deadlines_.size() == 1 || deadline_ms < earliest_bound_) {
    earliest_bound_ = deadline_ms;
  }
}

void TimerWheel::Cancel(std::uint64_t key) { deadlines_.erase(key); }

std::optional<std::uint64_t> TimerWheel::NextDeadline() const {
  if (deadlines_.empty()) return std::nullopt;
  return earliest_bound_;
}

std::vector<std::uint64_t> TimerWheel::Advance(std::uint64_t now_ms) {
  std::vector<std::uint64_t> fired;
  if (deadlines_.empty()) {
    current_tick_ = now_ms / tick_ms_;
    return fired;
  }
  const std::uint64_t target_tick = now_ms / tick_ms_;
  // Scan at most one full rotation: past that, every slot has been
  // visited once and longer-dated entries simply stay put.
  const std::uint64_t span =
      std::min<std::uint64_t>(target_tick - current_tick_, slots_.size() - 1);
  for (std::uint64_t tick = target_tick - span; tick <= target_tick; ++tick) {
    auto& bucket = slots_[static_cast<std::size_t>(tick % slots_.size())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint64_t key = bucket[i];
      auto it = deadlines_.find(key);
      if (it == deadlines_.end()) continue;  // cancelled or rescheduled away
      if (it->second <= now_ms) {
        // Due entries fire from whichever copy the scan reaches first;
        // the erase makes any other copy stale.
        fired.push_back(key);
        deadlines_.erase(it);
        continue;
      }
      if (SlotFor(it->second) != static_cast<std::size_t>(tick % slots_.size())) {
        continue;  // stale entry from an overwritten schedule
      }
      bucket[keep++] = key;  // future rotation of this slot
    }
    bucket.resize(keep);
  }
  current_tick_ = target_tick;
  // Recompute the cached bound; with the wheel sized for a few hundred
  // connections this linear pass is cheap and only runs after a wheel
  // advance, not per poll iteration.
  if (!deadlines_.empty()) {
    std::uint64_t earliest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [key, deadline] : deadlines_) {
      earliest = std::min(earliest, deadline);
    }
    earliest_bound_ = earliest;
  }
  return fired;
}

}  // namespace wum::net
