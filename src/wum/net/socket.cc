#include "wum/net/socket.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define WUM_NET_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define WUM_NET_HAS_SOCKETS 0
#endif

namespace wum::net {

#if WUM_NET_HAS_SOCKETS

namespace {

Status ErrnoStatus(const std::string& op, int err) {
  return Status::IoError(op + ": " + std::strerror(err));
}

/// SIGPIPE suppression: prefer the per-call flag where the platform has
/// one; Apple only has the per-socket option, set at open/accept time.
#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void SuppressSigpipe([[maybe_unused]] const Fd& fd) {
#if defined(SO_NOSIGPIPE)
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

/// getaddrinfo for a numeric-or-named IPv4/IPv6 host.
Result<Fd> OpenResolved(const std::string& host, std::uint16_t port,
                        bool listening, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = listening ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Status last = Status::IoError("getaddrinfo(" + host + "): no addresses");
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    if (listening) {
      int one = 1;
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
        last = ErrnoStatus("bind(" + host + ":" + service + ")", errno);
        continue;
      }
      if (::listen(fd.get(), backlog) != 0) {
        last = ErrnoStatus("listen", errno);
        continue;
      }
    } else {
      if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
        last = ErrnoStatus("connect(" + host + ":" + service + ")", errno);
        continue;
      }
    }
    ::freeaddrinfo(result);
    SuppressSigpipe(fd);
    return fd;
  }
  ::freeaddrinfo(result);
  return last;
}

}  // namespace

bool NetworkingAvailable() { return true; }

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenTcp(const std::string& host, std::uint16_t port,
                     int backlog) {
  return OpenResolved(host, port, /*listening=*/true, backlog);
}

Result<Fd> ConnectTcp(const std::string& host, std::uint16_t port) {
  return OpenResolved(host, port, /*listening=*/false, /*backlog=*/0);
}

Result<std::uint16_t> BoundPort(const Fd& socket) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  if (addr.ss_family == AF_INET) {
    return static_cast<std::uint16_t>(
        ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port));
  }
  if (addr.ss_family == AF_INET6) {
    return static_cast<std::uint16_t>(
        ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port));
  }
  return Status::Internal("getsockname: unexpected address family");
}

Status SetNonBlocking(const Fd& socket, bool enabled) {
  const int flags = ::fcntl(socket.get(), F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  const int updated = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(socket.get(), F_SETFL, updated) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Result<Fd> Accept(const Fd& listener) {
  while (true) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      Fd accepted(fd);
      SuppressSigpipe(accepted);
      return accepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    return ErrnoStatus("accept", errno);
  }
}

Result<ReadResult> ReadSome(const Fd& socket, char* buffer,
                            std::size_t capacity) {
  while (true) {
    const ssize_t n = ::read(socket.get(), buffer, capacity);
    if (n > 0) {
      ReadResult result;
      result.bytes = static_cast<std::size_t>(n);
      return result;
    }
    if (n == 0) {
      ReadResult result;
      result.eof = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ReadResult result;
      result.would_block = true;
      return result;
    }
    if (errno == ECONNRESET) {
      return Status::ConnectionReset("read: connection reset by peer");
    }
    return ErrnoStatus("read", errno);
  }
}

Status WriteAll(const Fd& socket, std::string_view data,
                std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(socket.get(), data.data() + written,
                             data.size() - written, kSendFlags);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The deadline bounds the *whole call*, not each poll: a peer
      // draining one byte per poll round cannot stretch the write
      // forever.
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      const auto remaining = deadline - elapsed;
      if (remaining <= std::chrono::milliseconds::zero()) {
        return Status::DeadlineExceeded(
            "write: peer not accepting data within " +
            std::to_string(deadline.count()) + "ms");
      }
      pollfd pfd{socket.get(), POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (rc < 0 && errno != EINTR) return ErrnoStatus("poll(POLLOUT)", errno);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::ConnectionReset("write: connection reset by peer");
    }
    return ErrnoStatus("write", errno);
  }
  return Status::OK();
}

void ResetHard(Fd* socket) {
  if (socket == nullptr || !socket->valid()) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(socket->get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  socket->reset();
}

Result<std::pair<Fd, Fd>> MakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return ErrnoStatus("pipe", errno);
  return std::make_pair(Fd(fds[0]), Fd(fds[1]));
}

#else  // !WUM_NET_HAS_SOCKETS

namespace {
Status NoSockets() {
  return Status::Unimplemented("wum::net requires a POSIX platform");
}
}  // namespace

bool NetworkingAvailable() { return false; }

void Fd::reset() { fd_ = -1; }

Result<Fd> ListenTcp(const std::string&, std::uint16_t, int) {
  return NoSockets();
}
Result<Fd> ConnectTcp(const std::string&, std::uint16_t) { return NoSockets(); }
Result<std::uint16_t> BoundPort(const Fd&) { return NoSockets(); }
Status SetNonBlocking(const Fd&, bool) { return NoSockets(); }
Result<Fd> Accept(const Fd&) { return NoSockets(); }
Result<ReadResult> ReadSome(const Fd&, char*, std::size_t) {
  return NoSockets();
}
Status WriteAll(const Fd&, std::string_view, std::chrono::milliseconds) {
  return NoSockets();
}
void ResetHard(Fd*) {}
Result<std::pair<Fd, Fd>> MakePipe() { return NoSockets(); }

#endif  // WUM_NET_HAS_SOCKETS

}  // namespace wum::net
