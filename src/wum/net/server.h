// LogServer: the TCP front end of the reactive pipeline (websra_serve).
//
// A single-threaded poll loop accepts line-framed CLF streams from many
// concurrent producers and feeds them all into one sharded StreamEngine
// through the same IngestDriver the file CLI uses — each connection owns
// a LineBuffer (partial-line carry) and a ClfParser, so per-producer
// line numbering and framing are independent while the user population
// is shared. Per-user FIFO holds because one user's records arrive on
// one connection in order and hash to one shard.
//
// Protocol (data port): optionally one handshake line
//   HELLO <client-id>\n        ->  OK <skip-bytes>\n
// then raw CLF lines until the client closes. The skip-bytes reply is
// the byte offset up to which the server has durably absorbed this
// client's stream (0 for new clients); a resuming client re-sends its
// log and the server discards the first skip-bytes defensively, so
// replay after a crash is exactly-once per client. Connections that
// skip the handshake are anonymous: fully served, never resumed.
//
// Admin port, one command per line:
//   STATS       -> one-line JSON metrics snapshot
//   CHECKPOINT  -> triggers StreamEngine::Checkpoint through the driver
//   QUIESCE     -> drains all connections, Finish()es the engine, runs
//                  the on_quiesce hook, replies, and stops the server
//   PING        -> OK
//
// Backpressure maps per-connection onto the engine's OfferPolicy:
// under kBlock a full shard queue blocks the loop inside OfferBatch —
// sockets stop being read and TCP pushes back on every producer; under
// kShed the engine drops sub-batches, and the server accounts the shed
// delta to the connection that offered it with a synthetic dead letter
// (conservation: emitted + dead-lettered == accepted).
//
// See docs/serving.md for the full protocol and restart runbook.

#ifndef WUM_NET_SERVER_H_
#define WUM_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wum/common/result.h"
#include "wum/ingest/byte_source.h"
#include "wum/ingest/driver.h"
#include "wum/net/socket.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"

namespace wum::net {

/// Durable per-client replay offsets: (client-id, bytes absorbed).
/// Stored in the checkpoint manifest's sink_state and handed back to
/// resuming clients as the HELLO skip-bytes reply.
using ClientOffsets = std::vector<std::pair<std::string, std::uint64_t>>;

/// sink_state codec for websra_serve checkpoints: the caller's journal
/// state (committed journal length) plus the per-client offsets, in the
/// ckpt wire format.
std::string EncodeServeSinkState(std::string_view journal_state,
                                 const ClientOffsets& offsets);
Status DecodeServeSinkState(std::string_view encoded,
                            std::string* journal_state,
                            ClientOffsets* offsets);

/// Counters of one Serve() run; also mirrored as net.* metrics when a
/// registry is attached.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t records_shed = 0;
  std::uint64_t admin_commands = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        // 0 = kernel-assigned; read back via port()
  std::uint16_t admin_port = 0;  // ditto via admin_port()
  std::size_t max_connections = 256;
  std::size_t read_buffer_bytes = 64u << 10;
  std::size_t max_line_bytes = ingest::LineBuffer::kDefaultMaxLineBytes;

  /// Driver configuration (batching + checkpoint cadence). Its
  /// sink_state field is overwritten by the server, which composes
  /// journal_state below with the live per-client offsets.
  ingest::IngestOptions ingest;

  /// Captures the caller's durable sink state (e.g. the flushed session
  /// journal length) at each checkpoint barrier; may be null when not
  /// checkpointing.
  StreamEngine::SinkStateFn journal_state;

  /// Runs during QUIESCE after the engine Finish()es (all sessions
  /// emitted); returns a short detail string appended to the OK reply,
  /// e.g. "sessions=412". May be null.
  std::function<Result<std::string>()> on_quiesce;

  obs::MetricRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// One engine, many producers. Start() binds both listeners (so the
/// kernel-assigned ports are known before the loop runs); Serve() runs
/// the poll loop on the calling thread until QUIESCE, RequestStop, or a
/// fatal engine error. Not restartable: one Serve() per LogServer.
class LogServer {
 public:
  /// `engine` and `dead_letters` (nullable) must outlive the server.
  /// `resumed_offsets` seeds the per-client replay offsets from a
  /// decoded checkpoint sink_state.
  static Result<std::unique_ptr<LogServer>> Start(
      ServerOptions options, StreamEngine* engine,
      DeadLetterQueue* dead_letters, ClientOffsets resumed_offsets = {});

  ~LogServer();  // out of line: Connection is an implementation type
  LogServer(const LogServer&) = delete;
  LogServer& operator=(const LogServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint16_t admin_port() const { return admin_port_; }

  /// The poll loop. Returns OK after a clean QUIESCE/stop, or the first
  /// fatal error (engine poisoned, listener failure). Call once.
  Status Serve();

  /// Initiates a graceful quiesce from another thread. Safe to call
  /// repeatedly.
  void RequestStop();

  /// Write end of the self-pipe: writing one byte is equivalent to
  /// RequestStop and is async-signal-safe (for SIGTERM handlers).
  int stop_fd() const { return stop_write_.get(); }

  /// True once QUIESCE completed (engine finished, hook ran).
  bool quiesced() const { return quiesced_; }

  /// Post-Serve accessors (serve-thread only, after Serve returned).
  const ServeStats& stats() const { return stats_; }
  const ClientOffsets& client_offsets() const { return client_offsets_; }

 private:
  struct Connection;

  LogServer(ServerOptions options, StreamEngine* engine,
            DeadLetterQueue* dead_letters, ClientOffsets resumed_offsets);

  Status BindListeners();
  Result<std::string> ComposeSinkState();
  Status AcceptPending(Fd* listener, bool admin);
  Status HandleReadable(Connection* conn, bool* made_progress = nullptr);
  Status HandleData(Connection* conn, std::string_view bytes);
  Status HandleHandshakeBuffer(Connection* conn);
  Status PumpConnection(Connection* conn);
  void RecordOffset(const Connection& conn);
  std::uint64_t OffsetFor(const std::string& client_id) const;
  Status HandleAdminLine(Connection* conn, std::string_view line);
  Status DoQuiesce(std::string* detail);
  void CloseConnection(Connection* conn, const char* why);

  ServerOptions options_;
  StreamEngine* engine_;
  DeadLetterQueue* dead_letters_;
  // Created by Start after the server exists (its sink_state lambda
  // captures `this`), hence optional rather than a direct member.
  std::optional<ingest::IngestDriver> driver_;

  Fd data_listener_;
  Fd admin_listener_;
  Fd stop_read_;
  Fd stop_write_;
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;

  std::vector<std::unique_ptr<Connection>> connections_;
  ClientOffsets client_offsets_;
  std::vector<char> read_buffer_;
  std::uint64_t records_at_last_checkpoint_ = 0;
  bool stopping_ = false;
  bool quiesced_ = false;
  ServeStats stats_;

  obs::Tracer tracer_;
  obs::Counter m_accepted_;
  obs::Counter m_closed_;
  obs::Counter m_handshakes_;
  obs::Counter m_bytes_read_;
  obs::Counter m_shed_;
  obs::Counter m_admin_;
};

}  // namespace wum::net

#endif  // WUM_NET_SERVER_H_
