// LogServer: the TCP front end of the reactive pipeline (websra_serve).
//
// A single-threaded poll loop accepts line-framed CLF streams from many
// concurrent producers and feeds them all into one sharded StreamEngine
// through the same IngestDriver the file CLI uses — each connection owns
// a LineBuffer (partial-line carry) and a ClfParser, so per-producer
// line numbering and framing are independent while the user population
// is shared. Per-user FIFO holds because one user's records arrive on
// one connection in order and hash to one shard.
//
// Protocol (data port): optionally one handshake line
//   HELLO <client-id>\n        ->  OK <skip-bytes>\n
// then raw CLF lines until the client closes. The skip-bytes reply is
// the byte offset up to which the server has durably absorbed this
// client's stream (0 for new clients); a resuming client re-sends its
// log and the server discards the first skip-bytes defensively, so
// replay after a crash is exactly-once per client. Connections that
// skip the handshake are anonymous: fully served, never resumed.
//
// Admin port, one command per line:
//   STATS       -> one-line JSON metrics snapshot
//   STATS JSON  -> /statusz-shaped operational JSON (fixed key order)
//   CHECKPOINT  -> triggers StreamEngine::Checkpoint through the driver
//   QUIESCE     -> drains all connections, Finish()es the engine, runs
//                  the on_quiesce hook, replies, and stops the server
//   PING        -> OK
//
// HTTP observability port (opt-in via ServerOptions::http_port), served
// from the same poll loop — no extra threads:
//   GET /metrics  -> Prometheus text exposition of the metric registry
//   GET /healthz  -> 200 "ok" | 503 + reasons (dead shard, dead-letter
//                    overflow, stale checkpoint)
//   GET /statusz  -> operational JSON snapshot (same body as STATS JSON)
// Requests are size-capped, read under a timer-wheel deadline (slow
// loris gets 408), and every response closes the connection.
//
// Backpressure maps per-connection onto the engine's OfferPolicy:
// under kBlock a full shard queue blocks the loop inside OfferBatch —
// sockets stop being read and TCP pushes back on every producer; under
// kShed the engine drops sub-batches, and the server accounts the shed
// delta to the connection that offered it with a synthetic dead letter
// (conservation: emitted + dead-lettered == accepted).
//
// Hostile-network hardening (all opt-in via ServerOptions):
//   * Lifecycle deadlines — idle, handshake and read (partial-line)
//     timeouts enforced from the poll loop by a timer wheel; expired
//     peers get a best-effort "ERR <reason>" and their carried partial
//     is dead-lettered with producer attribution. Reply writes are
//     bounded by a write deadline.
//   * Per-client quotas — a token-bucket byte rate (breach pauses only
//     the offending socket: per-producer TCP pushback, never global)
//     and a buffered-bytes ceiling (breach degrades per OfferPolicy).
//   * Admission control — max_connections and a global ingest byte
//     budget; over-budget connections are answered "BUSY <reason>" at
//     accept and refused.
//
// See docs/serving.md for the full protocol and restart runbook, and
// docs/robustness.md for the degradation matrix and chaos harness.

#ifndef WUM_NET_SERVER_H_
#define WUM_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wum/common/result.h"
#include "wum/ingest/byte_source.h"
#include "wum/ingest/driver.h"
#include "wum/net/quota.h"
#include "wum/net/socket.h"
#include "wum/net/timer_wheel.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/dead_letter.h"
#include "wum/stream/engine.h"

namespace wum::net {

/// Durable per-client replay offsets: (client-id, bytes absorbed).
/// Stored in the checkpoint manifest's sink_state and handed back to
/// resuming clients as the HELLO skip-bytes reply.
using ClientOffsets = std::vector<std::pair<std::string, std::uint64_t>>;

/// sink_state codec for websra_serve checkpoints: the caller's journal
/// state (committed journal length) plus the per-client offsets, in the
/// ckpt wire format.
std::string EncodeServeSinkState(std::string_view journal_state,
                                 const ClientOffsets& offsets);
Status DecodeServeSinkState(std::string_view encoded,
                            std::string* journal_state,
                            ClientOffsets* offsets);

/// Counters of one Serve() run; also mirrored as net.* metrics when a
/// registry is attached.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t records_shed = 0;
  std::uint64_t admin_commands = 0;
  /// Connections reaped by a lifecycle deadline (idle / handshake /
  /// read timeout).
  std::uint64_t connections_expired = 0;
  /// Connections answered BUSY and closed at accept (admission control).
  std::uint64_t connections_refused = 0;
  /// Complete lines dead-lettered instead of offered because a client
  /// breached its buffer quota under OfferPolicy::kShed.
  std::uint64_t lines_quota_shed = 0;
  /// Append calls refused for an over-long line (the bytes still count
  /// against the producer's rate quota).
  std::uint64_t oversize_rejections = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        // 0 = kernel-assigned; read back via port()
  std::uint16_t admin_port = 0;  // ditto via admin_port()
  std::size_t max_connections = 256;
  std::size_t read_buffer_bytes = 64u << 10;
  std::size_t max_line_bytes = ingest::LineBuffer::kDefaultMaxLineBytes;

  /// Connection lifecycle deadlines, enforced from the poll loop via a
  /// timer wheel (no extra threads). All zero by default: a trusted
  /// network behaves exactly as before this knob existed.
  DeadlineConfig deadlines;

  /// Per-data-connection resource quotas (rate, burst, buffered-bytes
  /// ceiling). Zero fields = unlimited. Breaches degrade per the
  /// engine's OfferPolicy: kBlock pauses only the offending socket (TCP
  /// pushes back on that producer alone), kShed dead-letters with
  /// per-producer attribution.
  ClientQuota client_quota;

  /// Global ceiling on bytes buffered across every connection's
  /// LineBuffer + handshake buffer; new connections are refused with
  /// BUSY while the budget is exhausted. 0 = unlimited.
  std::uint64_t ingest_budget_bytes = 0;

  /// Observability HTTP listener (GET /metrics, /healthz, /statusz).
  /// Unset = no HTTP port; 0 = kernel-assigned, read back via
  /// http_port().
  std::optional<std::uint16_t> http_port;
  /// Concurrent HTTP connections; further accepts are closed without a
  /// response (scrapers retry).
  std::size_t max_http_connections = 32;
  /// Deadline for a complete HTTP request head, enforced from the timer
  /// wheel — a slow-loris scraper is answered 408 and dropped. Always
  /// on (0 falls back to the default), unlike the opt-in data-port
  /// deadlines: the HTTP port serves only tiny GETs, so a deadline can
  /// never punish a legitimate peer.
  std::uint64_t http_read_timeout_ms = 5000;
  /// /healthz reports 503 once the newest checkpoint is older than this
  /// (only while checkpointing is configured). 0 = checkpoint age never
  /// degrades health.
  std::uint64_t healthz_max_checkpoint_age_ms = 0;

  /// Monotonic-milliseconds source for deadlines and quotas; tests
  /// install a manual clock. Defaults to MonotonicMillis.
  std::function<std::uint64_t()> clock_ms;

  /// Driver configuration (batching + checkpoint cadence). Its
  /// sink_state field is overwritten by the server, which composes
  /// journal_state below with the live per-client offsets.
  ingest::IngestOptions ingest;

  /// Captures the caller's durable sink state (e.g. the flushed session
  /// journal length) at each checkpoint barrier; may be null when not
  /// checkpointing.
  StreamEngine::SinkStateFn journal_state;

  /// Runs during QUIESCE after the engine Finish()es (all sessions
  /// emitted); returns a short detail string appended to the OK reply,
  /// e.g. "sessions=412". May be null.
  std::function<Result<std::string>()> on_quiesce;

  obs::MetricRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// One engine, many producers. Start() binds both listeners (so the
/// kernel-assigned ports are known before the loop runs); Serve() runs
/// the poll loop on the calling thread until QUIESCE, RequestStop, or a
/// fatal engine error. Not restartable: one Serve() per LogServer.
class LogServer {
 public:
  /// `engine` and `dead_letters` (nullable) must outlive the server.
  /// `resumed_offsets` seeds the per-client replay offsets from a
  /// decoded checkpoint sink_state.
  static Result<std::unique_ptr<LogServer>> Start(
      ServerOptions options, StreamEngine* engine,
      DeadLetterQueue* dead_letters, ClientOffsets resumed_offsets = {});

  ~LogServer();  // out of line: Connection is an implementation type
  LogServer(const LogServer&) = delete;
  LogServer& operator=(const LogServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint16_t admin_port() const { return admin_port_; }
  /// 0 when ServerOptions::http_port was unset.
  std::uint16_t http_port() const { return http_port_; }

  /// The poll loop. Returns OK after a clean QUIESCE/stop, or the first
  /// fatal error (engine poisoned, listener failure). Call once.
  Status Serve();

  /// Initiates a graceful quiesce from another thread. Safe to call
  /// repeatedly.
  void RequestStop();

  /// Write end of the self-pipe: writing one byte is equivalent to
  /// RequestStop and is async-signal-safe (for SIGTERM handlers).
  int stop_fd() const { return stop_write_.get(); }

  /// True once QUIESCE completed (engine finished, hook ran).
  bool quiesced() const { return quiesced_; }

  /// Post-Serve accessors (serve-thread only, after Serve returned).
  const ServeStats& stats() const { return stats_; }
  const ClientOffsets& client_offsets() const { return client_offsets_; }

 private:
  struct Connection;

  LogServer(ServerOptions options, StreamEngine* engine,
            DeadLetterQueue* dead_letters, ClientOffsets resumed_offsets);

  Status BindListeners();
  Result<std::string> ComposeSinkState();
  Status AcceptPending(Fd* listener, bool admin);
  /// Accepts pending HTTP scrapers (capped at max_http_connections).
  Status AcceptHttpPending();
  /// Drives one HTTP connection: buffers the request head, answers one
  /// GET, closes. Hostile input (oversized head, bad request line) is
  /// answered with the matching 4xx and closed.
  Status HandleHttpReadable(Connection* conn);
  /// ""  = healthy; otherwise a comma-joined list of what is wrong
  /// (dead shards, dead-letter overflow, stale checkpoint).
  std::string HealthProblems();
  /// The /statusz (and STATS JSON) body: one line of deterministic
  /// fixed-key-order JSON over server, engine, dead-letter and mining
  /// state.
  std::string StatuszJson();
  Status HandleReadable(Connection* conn, bool* made_progress = nullptr);
  Status HandleData(Connection* conn, std::string_view bytes);
  Status HandleHandshakeBuffer(Connection* conn);
  Status PumpConnection(Connection* conn);
  void RecordOffset(const Connection& conn);
  std::uint64_t OffsetFor(const std::string& client_id) const;
  /// Admin commands, dispatched by HandleAdminLine through a table of
  /// named handlers sharing one unknown-command path. `args` holds the
  /// operand text after the command word ("" for none).
  Status AdminPing(Connection* conn, std::string_view args);
  Status AdminStats(Connection* conn, std::string_view args);
  Status AdminCheckpoint(Connection* conn, std::string_view args);
  Status AdminQuiesce(Connection* conn, std::string_view args);
  Status AdminPatterns(Connection* conn, std::string_view args);
  Status HandleAdminLine(Connection* conn, std::string_view line);
  Status DoQuiesce(std::string* detail);
  void CloseConnection(Connection* conn, const char* why);

  std::uint64_t NowMs() const;
  /// Sends a reply; a write failure (peer reset, write deadline) closes
  /// this connection instead of propagating — one hostile reader must
  /// never take down the serve loop.
  void Reply(Connection* conn, std::string_view reply);
  /// Refuses a connection at accept: best-effort "BUSY <reason>" and
  /// close.
  void RefuseConnection(Fd accepted, const char* reason);
  /// Quarantines a connection's carried partial line (tagged with the
  /// producer) before the connection dies with data in flight.
  void DeadLetterPartial(Connection* conn, const Status& reason);
  /// (Re)arms the connection's earliest applicable deadline on the
  /// wheel; cancels when none applies.
  void ArmDeadline(Connection* conn);
  /// Timer-wheel callback: decides which deadline (if any) actually
  /// lapsed and expires or re-arms the connection.
  Status HandleDeadline(Connection* conn, std::uint64_t now_ms);
  /// Reaps a connection whose deadline lapsed: protocol ERR, partial
  /// dead-lettered, complete lines salvaged.
  Status ExpireConnection(Connection* conn, const char* reason);
  /// Degrades a connection that breached its buffer quota or the global
  /// ingest budget, honoring the engine's OfferPolicy.
  Status DegradeConnection(Connection* conn, const char* reason,
                           std::uint64_t now_ms);
  Connection* FindBySerial(std::uint64_t serial);
  std::uint64_t BufferedBytesTotal() const;

  ServerOptions options_;
  StreamEngine* engine_;
  DeadLetterQueue* dead_letters_;
  // Created by Start after the server exists (its sink_state lambda
  // captures `this`), hence optional rather than a direct member.
  std::optional<ingest::IngestDriver> driver_;

  Fd data_listener_;
  Fd admin_listener_;
  Fd http_listener_;  // invalid unless options_.http_port is set
  Fd stop_read_;
  Fd stop_write_;
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;
  std::uint16_t http_port_ = 0;

  std::vector<std::unique_ptr<Connection>> connections_;
  ClientOffsets client_offsets_;
  std::vector<char> read_buffer_;
  std::uint64_t records_at_last_checkpoint_ = 0;
  /// Checkpoint-age baseline for /healthz: Serve() start, then each
  /// completed checkpoint.
  std::uint64_t last_checkpoint_ms_ = 0;
  /// Serve() start (monotonic ms) for /statusz uptime.
  std::uint64_t started_at_ms_ = 0;
  bool stopping_ = false;
  bool quiesced_ = false;
  ServeStats stats_;
  TimerWheel wheel_;

  obs::Tracer tracer_;
  obs::Counter m_accepted_;
  obs::Counter m_closed_;
  obs::Counter m_handshakes_;
  obs::Counter m_bytes_read_;
  obs::Counter m_shed_;
  obs::Counter m_admin_;
  obs::Counter m_expired_;
  obs::Counter m_refused_;
  obs::Counter m_quota_shed_;
  obs::Counter m_oversize_;
  /// Total wall time data fds spent withheld from poll (rate-limit and
  /// kBlock quota pauses) — the backpressure stall the quota layer
  /// imposed on producers, in milliseconds.
  obs::Counter m_pause_ms_;
  obs::Counter m_http_requests_;
  obs::Gauge g_active_;
};

}  // namespace wum::net

#endif  // WUM_NET_SERVER_H_
