// TimerWheel: the LogServer's connection-deadline scheduler — a
// single-level hashed timer wheel driven entirely from the poll loop,
// no extra threads and no per-tick allocation on the happy path.
//
// The server schedules one deadline per connection serial (idle,
// handshake, read — whichever expires first) and asks NextDeadline()
// how long poll(2) may sleep. Deadlines are coarse by design: the wheel
// buckets them into tick-sized slots, so expiry fires within one tick
// of the true deadline — deadlines here are seconds-scale defenses, not
// microsecond timers.
//
// Rescheduling a key overwrites its deadline; the stale slot entry is
// skipped lazily when its slot is scanned (the authoritative deadline
// lives in the key map). NextDeadline() returns a cached *lower bound*:
// the loop may wake early, find nothing due, and re-arm — correctness
// never depends on the bound being tight.

#ifndef WUM_NET_TIMER_WHEEL_H_
#define WUM_NET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace wum::net {

/// Monotonic milliseconds from std::chrono::steady_clock — the clock
/// every net-layer deadline runs on (tests inject their own values
/// instead of overriding the clock).
std::uint64_t MonotonicMillis();

class TimerWheel {
 public:
  /// `tick_ms` is the expiry granularity, `slots` the wheel
  /// circumference: deadlines further than tick_ms * slots out simply
  /// survive extra rotations (checked against the key map each pass).
  explicit TimerWheel(std::uint64_t tick_ms = 16, std::size_t slots = 128);

  /// Schedules (or reschedules) `key` to fire at `deadline_ms`. One
  /// live deadline per key.
  void Schedule(std::uint64_t key, std::uint64_t deadline_ms);

  /// Forgets `key`; a no-op when not scheduled.
  void Cancel(std::uint64_t key);

  /// The earliest moment any key could fire — a lower bound, suitable
  /// as the poll timeout. nullopt when nothing is scheduled.
  std::optional<std::uint64_t> NextDeadline() const;

  /// Advances the wheel to `now_ms` and returns every key whose
  /// deadline has passed (each at most once; fired keys are forgotten).
  std::vector<std::uint64_t> Advance(std::uint64_t now_ms);

  /// Keys currently scheduled.
  std::size_t size() const { return deadlines_.size(); }

 private:
  std::size_t SlotFor(std::uint64_t deadline_ms) const {
    return static_cast<std::size_t>(deadline_ms / tick_ms_) % slots_.size();
  }

  std::uint64_t tick_ms_;
  std::vector<std::vector<std::uint64_t>> slots_;  // keys, possibly stale
  std::unordered_map<std::uint64_t, std::uint64_t> deadlines_;  // key -> ms
  std::uint64_t current_tick_ = 0;  // last tick Advance fully scanned
  std::uint64_t earliest_bound_ = 0;  // cached lower bound for NextDeadline
};

}  // namespace wum::net

#endif  // WUM_NET_TIMER_WHEEL_H_
