#include "wum/net/chaos.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace wum::net {

namespace {

/// Flips one non-newline byte of `chunk` (framing must survive so the
/// corruption lands inside exactly one line). No-op when every byte is
/// a newline.
void FlipOneByte(std::string* chunk, Rng* rng) {
  if (chunk->empty()) return;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::size_t pos =
        static_cast<std::size_t>(rng->NextBounded(chunk->size()));
    if ((*chunk)[pos] == '\n') continue;
    (*chunk)[pos] = static_cast<char>((*chunk)[pos] ^ 0x20);
    return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ChaosSocket

ChaosSocket::ChaosSocket(Fd fd, const ChaosOptions& options)
    : fd_(std::move(fd)), options_(options), rng_(options.seed) {}

Status ChaosSocket::Send(std::string_view data) {
  if (!fd_.valid()) {
    return Status::ConnectionReset("chaos: socket already reset");
  }
  ++stats_.writes;
  if (options_.stall_probability > 0 &&
      rng_.Bernoulli(options_.stall_probability)) {
    ++stats_.stalls;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.stall_ms));
  }
  scratch_.assign(data);
  if (options_.corrupt_probability > 0 &&
      rng_.Bernoulli(options_.corrupt_probability)) {
    ++stats_.corruptions;
    FlipOneByte(&scratch_, &rng_);
  }
  if (options_.reset_probability > 0 &&
      rng_.Bernoulli(options_.reset_probability)) {
    // Send a prefix so the RST lands mid-line, then slam the door.
    const std::size_t cut = scratch_.empty()
                                ? 0
                                : static_cast<std::size_t>(
                                      rng_.NextBounded(scratch_.size()));
    if (cut > 0) {
      (void)SendPiece(std::string_view(scratch_).substr(0, cut));
    }
    ++stats_.resets;
    ResetHard(&fd_);
    return Status::ConnectionReset("chaos: injected reset");
  }
  if (options_.short_write_probability > 0 && scratch_.size() > 1 &&
      rng_.Bernoulli(options_.short_write_probability)) {
    ++stats_.short_writes;
    const std::size_t split = 1 + static_cast<std::size_t>(
                                      rng_.NextBounded(scratch_.size() - 1));
    WUM_RETURN_NOT_OK(SendPiece(std::string_view(scratch_).substr(0, split)));
    if (options_.stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.stall_ms));
    }
    return SendPiece(std::string_view(scratch_).substr(split));
  }
  return SendPiece(scratch_);
}

Status ChaosSocket::SendPiece(std::string_view piece) {
  if (options_.trickle) {
    for (std::size_t i = 0; i < piece.size(); ++i) {
      WUM_RETURN_NOT_OK(WriteAll(fd_, piece.substr(i, 1)));
      ++stats_.bytes_sent;
    }
    return Status::OK();
  }
  WUM_RETURN_NOT_OK(WriteAll(fd_, piece));
  stats_.bytes_sent += piece.size();
  return Status::OK();
}

void ChaosSocket::Reset() {
  if (!fd_.valid()) return;
  ++stats_.resets;
  ResetHard(&fd_);
}

// ---------------------------------------------------------------------------
// ChaosByteSource

ChaosByteSource::ChaosByteSource(ingest::ByteSource* inner,
                                 const ChaosOptions& options)
    : inner_(inner), options_(options), rng_(options.seed) {}

bool ChaosByteSource::exhausted() const {
  return reset_injected_ || (queued_.empty() && inner_->exhausted());
}

Result<std::optional<std::string_view>> ChaosByteSource::Next() {
  if (reset_injected_) return std::optional<std::string_view>();
  if (!queued_.empty()) {
    serving_ = std::move(queued_.front());
    queued_.pop_front();
    return std::optional<std::string_view>(serving_);
  }
  if (options_.stall_probability > 0 &&
      rng_.Bernoulli(options_.stall_probability)) {
    // "No data yet" — indistinguishable from a socket with nothing
    // buffered; the pump comes back later.
    ++stats_.stalls;
    return std::optional<std::string_view>();
  }
  WUM_ASSIGN_OR_RETURN(std::optional<std::string_view> chunk, inner_->Next());
  if (!chunk.has_value()) return std::optional<std::string_view>();
  ++stats_.writes;
  serving_.assign(*chunk);
  if (options_.corrupt_probability > 0 &&
      rng_.Bernoulli(options_.corrupt_probability)) {
    ++stats_.corruptions;
    FlipOneByte(&serving_, &rng_);
  }
  if (options_.reset_probability > 0 &&
      rng_.Bernoulli(options_.reset_probability)) {
    // Cut mid-line: keep a strict prefix ending inside a line, serve it
    // as the stream's final (unterminated) chunk.
    ++stats_.resets;
    reset_injected_ = true;
    const std::size_t cut = serving_.empty()
                                ? 0
                                : static_cast<std::size_t>(
                                      rng_.NextBounded(serving_.size()));
    serving_.resize(cut);
    if (serving_.empty()) return std::optional<std::string_view>();
    return std::optional<std::string_view>(serving_);
  }
  if (options_.trickle) {
    // Re-serve the chunk one line at a time; the chunk contract keeps
    // holding because each piece ends on its '\n'.
    std::string whole = std::move(serving_);
    std::size_t start = 0;
    while (start < whole.size()) {
      const std::size_t nl = whole.find('\n', start);
      const std::size_t end = nl == std::string::npos ? whole.size() : nl + 1;
      queued_.emplace_back(whole.substr(start, end - start));
      start = end;
    }
    if (queued_.empty()) return std::optional<std::string_view>();
    serving_ = std::move(queued_.front());
    queued_.pop_front();
    return std::optional<std::string_view>(serving_);
  }
  stats_.bytes_sent += serving_.size();
  return std::optional<std::string_view>(serving_);
}

}  // namespace wum::net
