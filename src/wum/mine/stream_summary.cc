#include "wum/mine/stream_summary.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace wum::mine {

bool PatternOrderBefore(const PatternEstimate& a, const PatternEstimate& b) {
  if (a.count != b.count) return a.count > b.count;
  if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
  return a.path < b.path;
}

StreamSummary::StreamSummary(std::size_t capacity, std::uint64_t window_paths)
    : capacity_(capacity == 0 ? 1 : capacity), window_paths_(window_paths) {
  nodes_.reserve(capacity_);
  std::size_t slot_count = 8;
  while (slot_count < capacity_ * 2) slot_count <<= 1;
  slots_.assign(slot_count, kNil);
  slot_mask_ = slot_count - 1;
}

std::uint64_t StreamSummary::HashKey(std::string_view key) {
  std::uint64_t h =
      0x9e3779b97f4a7c15ull ^ (key.size() * 0xbf58476d1ce4e5b9ull);
  const char* p = key.data();
  std::size_t n = key.size();
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, p, n);
    h = (h ^ chunk) * 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 29;
  }
  h *= 0xbf58476d1ce4e5b9ull;
  return h ^ (h >> 32);
}

std::size_t StreamSummary::FindSlot(std::string_view key,
                                    std::uint64_t hash) const {
  // Terminates because the table never fills: tracked_ <= capacity_ and
  // the constructor sizes the table to at least 2 * capacity_ slots.
  std::size_t slot = hash & slot_mask_;
  while (true) {
    const std::uint32_t n = slots_[slot];
    if (n == kNil) return slot;
    if (nodes_[n].hash == hash && nodes_[n].key == key) return slot;
    slot = (slot + 1) & slot_mask_;
  }
}

void StreamSummary::EraseKey(std::string_view key, std::uint64_t hash) {
  std::size_t hole = FindSlot(key, hash);
  std::size_t i = (hole + 1) & slot_mask_;
  while (slots_[i] != kNil) {
    // An entry fills the hole only if its probe path runs through it,
    // i.e. the hole lies between the entry's ideal slot and its
    // current one (cyclically); otherwise it would become unreachable.
    const std::size_t ideal = nodes_[slots_[i]].hash & slot_mask_;
    if (((i - ideal) & slot_mask_) >= ((i - hole) & slot_mask_)) {
      slots_[hole] = slots_[i];
      hole = i;
    }
    i = (i + 1) & slot_mask_;
  }
  slots_[hole] = kNil;
  --tracked_;
}

std::vector<PageId> StreamSummary::UnpackPath(std::string_view key) {
  std::vector<PageId> path(key.size() / 4);
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = static_cast<PageId>(static_cast<unsigned char>(key[i * 4 + 0])) |
              (static_cast<PageId>(static_cast<unsigned char>(key[i * 4 + 1]))
               << 8) |
              (static_cast<PageId>(static_cast<unsigned char>(key[i * 4 + 2]))
               << 16) |
              (static_cast<PageId>(static_cast<unsigned char>(key[i * 4 + 3]))
               << 24);
  }
  return path;
}

std::uint32_t StreamSummary::AllocNode() {
  if (!free_nodes_.empty()) {
    const std::uint32_t n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t StreamSummary::AllocBucket(std::uint64_t count) {
  std::uint32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    buckets_.emplace_back();
    b = static_cast<std::uint32_t>(buckets_.size() - 1);
  }
  buckets_[b] = Bucket{};
  buckets_[b].count = count;
  return b;
}

void StreamSummary::FreeBucket(std::uint32_t b) { free_buckets_.push_back(b); }

void StreamSummary::AppendToBucket(std::uint32_t b, std::uint32_t n) {
  Node& node = nodes_[n];
  Bucket& bucket = buckets_[b];
  node.bucket = b;
  node.prev = bucket.tail;
  node.next = kNil;
  if (bucket.tail != kNil) {
    nodes_[bucket.tail].next = n;
  } else {
    bucket.head = n;
  }
  bucket.tail = n;
}

StreamSummary::Anchors StreamSummary::DetachFromBucket(std::uint32_t n) {
  Node& node = nodes_[n];
  const std::uint32_t b = node.bucket;
  Bucket& bucket = buckets_[b];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    bucket.head = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    bucket.tail = node.prev;
  }
  node.bucket = kNil;
  node.prev = kNil;
  node.next = kNil;
  if (bucket.head != kNil) return Anchors{b, bucket.next};
  // The bucket emptied: unlink it from the chain; the gap it leaves is
  // where a replacement bucket would link in.
  const Anchors anchors{bucket.prev, bucket.next};
  if (bucket.prev != kNil) {
    buckets_[bucket.prev].next = bucket.next;
  } else {
    min_bucket_ = bucket.next;
  }
  if (bucket.next != kNil) {
    buckets_[bucket.next].prev = bucket.prev;
  } else {
    max_bucket_ = bucket.prev;
  }
  FreeBucket(b);
  return anchors;
}

void StreamSummary::LinkBucketBetween(std::uint32_t b, Anchors anchors) {
  Bucket& bucket = buckets_[b];
  bucket.prev = anchors.prev;
  bucket.next = anchors.next;
  if (anchors.prev != kNil) {
    buckets_[anchors.prev].next = b;
  } else {
    min_bucket_ = b;
  }
  if (anchors.next != kNil) {
    buckets_[anchors.next].prev = b;
  } else {
    max_bucket_ = b;
  }
}

void StreamSummary::PlaceWithCount(std::uint32_t n, std::uint64_t new_count) {
  {
    // Fast path: the node is its bucket's only member and no successor
    // bucket already holds new_count, so the bucket absorbs the new
    // count in place — same structure the detach/alloc/relink dance
    // below would produce, without touching the chain. (Order holds:
    // the successor's count exceeded the old count, so it is >=
    // new_count; equality falls through to the merge path.)
    const Bucket& bucket = buckets_[nodes_[n].bucket];
    if (bucket.head == n && bucket.tail == n &&
        (bucket.next == kNil || buckets_[bucket.next].count > new_count)) {
      buckets_[nodes_[n].bucket].count = new_count;
      nodes_[n].count = new_count;
      return;
    }
  }
  const Anchors anchors = DetachFromBucket(n);
  nodes_[n].count = new_count;
  if (anchors.next != kNil && buckets_[anchors.next].count == new_count) {
    AppendToBucket(anchors.next, n);
    return;
  }
  const std::uint32_t b = AllocBucket(new_count);
  LinkBucketBetween(b, anchors);
  AppendToBucket(b, n);
}

bool StreamSummary::Offer(const PageId* pages, std::size_t length,
                          std::uint64_t first_seen_seq) {
  key_buf_.resize(length * 4);
  for (std::size_t i = 0; i < length; ++i) {
    const PageId page = pages[i];
    key_buf_[i * 4 + 0] = static_cast<char>(page & 0xff);
    key_buf_[i * 4 + 1] = static_cast<char>((page >> 8) & 0xff);
    key_buf_[i * 4 + 2] = static_cast<char>((page >> 16) & 0xff);
    key_buf_[i * 4 + 3] = static_cast<char>((page >> 24) & 0xff);
  }
  ++paths_processed_;
  bool inserted = false;
  const std::uint64_t hash = HashKey(key_buf_);
  const std::size_t slot = FindSlot(key_buf_, hash);
  if (slots_[slot] != kNil) {
    const std::uint32_t n = slots_[slot];
    PlaceWithCount(n, nodes_[n].count + 1);
  } else if (tracked_ < capacity_) {
    const std::uint32_t n = AllocNode();
    Node& node = nodes_[n];
    node.key = key_buf_;
    node.hash = hash;
    node.count = 1;
    node.error = 0;
    node.first_seen = first_seen_seq;
    if (min_bucket_ != kNil && buckets_[min_bucket_].count == 1) {
      AppendToBucket(min_bucket_, n);
    } else {
      const std::uint32_t b = AllocBucket(1);
      LinkBucketBetween(b, Anchors{kNil, min_bucket_});
      AppendToBucket(b, n);
    }
    slots_[slot] = n;
    ++tracked_;
    inserted = true;
  } else {
    // SpaceSaving eviction: the victim is the head of the minimum
    // bucket (its longest resident — a deterministic choice that
    // Serialize/Restore preserves). The newcomer inherits the victim's
    // count as its error bound.
    const std::uint32_t v = buckets_[min_bucket_].head;
    Node& node = nodes_[v];
    const std::uint64_t inherited = node.count;
    EraseKey(node.key, node.hash);
    node.key = key_buf_;
    node.hash = hash;
    node.error = inherited;
    node.first_seen = first_seen_seq;
    PlaceWithCount(v, inherited + 1);
    // Backward-shift may have moved entries, so re-probe for the slot.
    slots_[FindSlot(node.key, hash)] = v;
    ++tracked_;
    inserted = true;
  }
  if (window_paths_ != 0 && ++offers_since_decay_ >= window_paths_) {
    Decay();
    offers_since_decay_ = 0;
  }
  return inserted;
}

void StreamSummary::AppendEstimate(std::uint32_t n,
                                   std::vector<PatternEstimate>* out) const {
  const Node& node = nodes_[n];
  out->push_back(PatternEstimate{UnpackPath(node.key), node.count, node.error,
                                 node.first_seen});
}

void StreamSummary::AppendAll(std::vector<PatternEstimate>* out) const {
  for (std::uint32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
    for (std::uint32_t n = buckets_[b].head; n != kNil; n = nodes_[n].next) {
      AppendEstimate(n, out);
    }
  }
}

std::vector<PatternEstimate> StreamSummary::TopK(std::size_t k) const {
  std::vector<PatternEstimate> all;
  all.reserve(tracked_);
  AppendAll(&all);
  std::sort(all.begin(), all.end(), PatternOrderBefore);
  if (all.size() > k) all.resize(k);
  return all;
}

void StreamSummary::AppendInChainOrder(std::uint32_t n) {
  if (max_bucket_ != kNil && buckets_[max_bucket_].count == nodes_[n].count) {
    AppendToBucket(max_bucket_, n);
    return;
  }
  const std::uint32_t b = AllocBucket(nodes_[n].count);
  LinkBucketBetween(b, Anchors{max_bucket_, kNil});
  AppendToBucket(b, n);
}

void StreamSummary::Decay() {
  // Collect survivors in chain order; halved counts stay non-decreasing
  // in that order, so one appending pass rebuilds the chain.
  std::vector<std::uint32_t> order;
  order.reserve(tracked_);
  for (std::uint32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
    for (std::uint32_t n = buckets_[b].head; n != kNil; n = nodes_[n].next) {
      order.push_back(n);
    }
  }
  buckets_.clear();
  free_buckets_.clear();
  min_bucket_ = kNil;
  max_bucket_ = kNil;
  for (const std::uint32_t n : order) {
    Node& node = nodes_[n];
    node.count >>= 1;
    node.error >>= 1;
    node.bucket = kNil;
    node.prev = kNil;
    node.next = kNil;
    if (node.count == 0) {
      EraseKey(node.key, node.hash);
      node.key.clear();
      free_nodes_.push_back(n);
    } else {
      AppendInChainOrder(n);
    }
  }
  paths_processed_ >>= 1;
  ++decays_;
}

void StreamSummary::Serialize(ckpt::Encoder* encoder) const {
  encoder->PutUvarint(capacity_);
  encoder->PutUvarint(window_paths_);
  encoder->PutUvarint(paths_processed_);
  encoder->PutUvarint(offers_since_decay_);
  encoder->PutUvarint(decays_);
  encoder->PutUvarint(tracked_);
  for (std::uint32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
    for (std::uint32_t n = buckets_[b].head; n != kNil; n = nodes_[n].next) {
      const Node& node = nodes_[n];
      encoder->PutUvarint(node.count);
      encoder->PutUvarint(node.error);
      encoder->PutUvarint(node.first_seen);
      encoder->PutString(node.key);
    }
  }
}

Status StreamSummary::Restore(ckpt::Decoder* decoder) {
  WUM_ASSIGN_OR_RETURN(const std::uint64_t capacity, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t window, decoder->GetUvarint());
  if (capacity != capacity_ || window != window_paths_) {
    return Status::InvalidArgument(
        "mining state was written under a different configuration "
        "(capacity " +
        std::to_string(capacity) + " window " + std::to_string(window) +
        ", expected capacity " + std::to_string(capacity_) + " window " +
        std::to_string(window_paths_) + ")");
  }
  WUM_ASSIGN_OR_RETURN(paths_processed_, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(offers_since_decay_, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(decays_, decoder->GetUvarint());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t tracked, decoder->GetUvarint());
  if (tracked > capacity_) {
    return Status::ParseError("mining state tracks more paths than capacity");
  }
  nodes_.clear();
  free_nodes_.clear();
  buckets_.clear();
  free_buckets_.clear();
  min_bucket_ = kNil;
  max_bucket_ = kNil;
  slots_.assign(slots_.size(), kNil);
  tracked_ = 0;
  std::uint64_t previous_count = 0;
  for (std::uint64_t i = 0; i < tracked; ++i) {
    WUM_ASSIGN_OR_RETURN(const std::uint64_t count, decoder->GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t error, decoder->GetUvarint());
    WUM_ASSIGN_OR_RETURN(const std::uint64_t first_seen, decoder->GetUvarint());
    WUM_ASSIGN_OR_RETURN(std::string key, decoder->GetString());
    if (count == 0 || count < previous_count) {
      return Status::ParseError("mining state counts out of chain order");
    }
    if (key.size() % 4 != 0) {
      return Status::ParseError("mining state path key not page-aligned");
    }
    previous_count = count;
    const std::uint64_t hash = HashKey(key);
    const std::size_t slot = FindSlot(key, hash);
    if (slots_[slot] != kNil) {
      return Status::ParseError("mining state repeats a path");
    }
    const std::uint32_t n = AllocNode();
    Node& node = nodes_[n];
    node.key = std::move(key);
    node.hash = hash;
    node.count = count;
    node.error = error;
    node.first_seen = first_seen;
    slots_[slot] = n;
    ++tracked_;
    AppendInChainOrder(n);
  }
  return Status::OK();
}

}  // namespace wum::mine
