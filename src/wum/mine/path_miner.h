// PathMiner: the reactive top-k frequent-path miner of wum::mine — the
// online counterpart of the batch AprioriAll miner, answering "what are
// the hot navigation paths right now" at any moment while the session
// stream runs. Every closed session is decomposed into its contiguous
// page n-grams (lengths min_length..max_length); n-grams that violate
// the site's link topology are discarded (the follow-up paper's
// observation: only topology-valid paths are real navigation), and each
// valid path feeds a per-length SpaceSaving StreamSummary.
//
// MiningSink is the engine-facing tap: a SessionSink that forwards to
// the caller's downstream sink unchanged and buffers page sequences for
// batched hand-off to a dedicated miner thread, so the serialized emit
// path only ever copies page ids — the SpaceSaving work happens off the
// hot path (a bounded FIFO queue applies backpressure instead of
// growing without limit). Batches are always mined in hand-off (=
// emission) order whichever thread drains them, which keeps the miner
// state deterministic for a given session stream. All public MiningSink
// methods are thread-safe: shard workers call Accept through the emit
// hub while the admin thread queries PatternsJson (queries drain the
// queue first, so they see every session accepted before the call).
//
// See docs/mining.md for the algorithm, error bounds, window semantics
// and the PATTERNS admin protocol.

#ifndef WUM_MINE_PATH_MINER_H_
#define WUM_MINE_PATH_MINER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "wum/common/result.h"
#include "wum/mine/options.h"
#include "wum/mine/stream_summary.h"
#include "wum/obs/metrics.h"
#include "wum/stream/pipeline.h"
#include "wum/topology/web_graph.h"

namespace wum::mine {

/// Single-threaded miner core (MiningSink adds the locking).
class PathMiner {
 public:
  /// `graph` may be null: no topology filter (every contiguous n-gram
  /// counts). `metrics` may be null (disabled handles). Both must
  /// outlive the miner. `options` must already validate.
  PathMiner(const MinerOptions& options, const WebGraph* graph,
            obs::MetricRegistry* metrics);

  /// Mines one closed session's page sequence.
  void AddSession(const std::vector<PageId>& pages);

  /// Top-k estimates under PatternOrderBefore. `length` selects one
  /// summary (must be inside the configured range); 0 merges every
  /// length before the sort. k == 0 uses options().top_k.
  std::vector<PatternEstimate> TopK(std::size_t k = 0,
                                    std::size_t length = 0) const;

  /// Deterministic one-line JSON for the PATTERNS admin command:
  /// {"k":..,"length":..,"sessions":..,"paths":..,"capacity":..,
  ///  "patterns":[{"path":[..],"count":..,"error":..},..]}
  /// Key order is fixed and no floats are emitted, so byte equality is
  /// meaningful (the kill-and-resume smoke depends on it).
  std::string PatternsJson(std::size_t k = 0, std::size_t length = 0) const;

  std::uint64_t sessions_seen() const { return sessions_seen_; }
  /// Total valid paths offered across lengths (post-decay halving).
  std::uint64_t paths_processed() const;
  std::size_t tracked() const;
  const MinerOptions& options() const { return options_; }

  /// Checkpoint hooks, mirroring the sessionizer SerializeState idiom:
  /// one header frame (config fingerprint + counters) then one frame
  /// per length summary. RestoreState refuses frames written under a
  /// different configuration.
  Status SerializeState(std::vector<std::string>* frames) const;
  Status RestoreState(std::span<const std::string> frames);

 private:
  const StreamSummary& SummaryFor(std::size_t length) const {
    return summaries_[length - options_.min_length];
  }

  MinerOptions options_;
  const WebGraph* graph_;
  std::vector<StreamSummary> summaries_;  // index = length - min_length
  std::uint64_t sessions_seen_ = 0;
  /// First-seen sequence source, shared across lengths so the tie-break
  /// totally orders merged TopK output.
  std::uint64_t next_first_seen_ = 0;
  /// Reused per session: hop_ok_[i] records whether pages[i] ->
  /// pages[i+1] is a hyperlink, so overlapping n-grams share one
  /// HasLink probe per hop instead of re-testing it per n-gram.
  std::vector<unsigned char> hop_ok_;

  obs::Counter m_sessions_;
  obs::Counter m_paths_;
  obs::Counter m_topology_rejects_;
  obs::Gauge g_tracked_;
};

/// The emit-hub tap: counts every closed session, forwards to an
/// optional downstream sink, mines on a dedicated thread. Thread-safe.
class MiningSink : public SessionSink {
 public:
  /// `downstream` may be null (sessions are only mined). `graph` /
  /// `metrics` as in PathMiner. Starts the miner thread.
  MiningSink(SessionSink* downstream, const MinerOptions& options,
             const WebGraph* graph, obs::MetricRegistry* metrics);
  /// Stops the miner thread. Queued batches that were never queried or
  /// serialized are dropped — owners query before destroying.
  ~MiningSink() override;

  /// Forwards the session downstream first and buffers its page
  /// sequence for mining (handing off when the batch fills) only on
  /// success, so retried or refused sessions never skew the counts.
  /// Blocks only when the batch queue is full (sustained overload).
  Status Accept(const std::string& client_ip, Session session) override;

  /// Drains the pending batch and the whole queue into the miner.
  /// Queries and checkpoint hooks flush implicitly; an explicit call
  /// makes mid-run state deterministic in tests.
  void Flush();

  std::vector<PatternEstimate> TopK(std::size_t k = 0,
                                    std::size_t length = 0) const;
  std::string PatternsJson(std::size_t k = 0, std::size_t length = 0) const;
  std::uint64_t sessions_seen() const;
  /// Batches waiting for the miner thread (0..kMaxQueuedBatches, the
  /// partial pending batch excluded) — the mining-queue-depth gauge
  /// scrape probes read. Thread-safe.
  std::size_t queued_batches() const;
  const MinerOptions& options() const { return miner_.options(); }

  Status SerializeState(std::vector<std::string>* frames) const;
  Status RestoreState(std::span<const std::string> frames);

 private:
  /// Sessions buffered under backpressure: kMaxQueuedBatches *
  /// batch_sessions page sequences, then Accept blocks.
  static constexpr std::size_t kMaxQueuedBatches = 16;

  /// Pops and mines the oldest queued batch; false when the queue is
  /// empty. Pop and mine happen under one hold of miner_mutex_, so
  /// batches are mined strictly in hand-off order no matter which
  /// thread (worker, query, or backpressured producer) drains them.
  bool MineOneBatch() const;
  /// Hands the partial pending batch to the queue and mines until the
  /// queue is empty (the implicit flush of queries and checkpoints).
  void DrainAll() const;
  void WorkerLoop();

  SessionSink* downstream_;

  /// queue_mutex_ guards pending_/queue_/stop_ (the hand-off state);
  /// miner_mutex_ serializes the actual mining and guards miner_. Both
  /// are mutable so const queries can drain buffered-but-uncounted
  /// state into the miner, which does not change what the miner
  /// logically represents.
  mutable std::mutex queue_mutex_;
  mutable std::condition_variable work_available_;
  mutable std::condition_variable space_available_;
  mutable std::vector<std::vector<PageId>> pending_;
  mutable std::deque<std::vector<std::vector<PageId>>> queue_;
  bool stop_ = false;

  mutable std::mutex miner_mutex_;
  mutable PathMiner miner_;
  mutable obs::Counter m_batches_;
  obs::Histogram h_flush_us_;
  std::thread worker_;  // last member: starts after everything exists
};

}  // namespace wum::mine

#endif  // WUM_MINE_PATH_MINER_H_
