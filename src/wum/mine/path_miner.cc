#include "wum/mine/path_miner.h"

#include <algorithm>
#include <utility>

namespace wum::mine {

namespace {

/// Guards the miner state frames against a slot mix-up (the framed file
/// already carries a file-level magic; this tags the header frame).
constexpr std::uint64_t kMinerStateMagic = 0x454e494d;  // "MINE"

}  // namespace

Status ValidateMinerOptions(const MinerOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("mining top_k must be >= 1");
  }
  if (options.min_length < 1) {
    return Status::InvalidArgument("mining min_length must be >= 1");
  }
  if (options.max_length < options.min_length) {
    return Status::InvalidArgument(
        "mining max_length must be >= min_length (got " +
        std::to_string(options.max_length) + " < " +
        std::to_string(options.min_length) + ")");
  }
  const std::size_t capacity = options.EffectiveCapacity();
  if (capacity < options.top_k) {
    return Status::InvalidArgument(
        "mining capacity (" + std::to_string(capacity) +
        ") must be >= top_k (" + std::to_string(options.top_k) + ")");
  }
  if (options.window_paths != 0 && options.window_paths < capacity) {
    return Status::InvalidArgument(
        "mining window_paths (" + std::to_string(options.window_paths) +
        ") must be 0 or >= capacity (" + std::to_string(capacity) +
        "), else tracked paths decay away faster than they accumulate");
  }
  if (options.batch_sessions == 0) {
    return Status::InvalidArgument("mining batch_sessions must be >= 1");
  }
  return Status::OK();
}

PathMiner::PathMiner(const MinerOptions& options, const WebGraph* graph,
                     obs::MetricRegistry* metrics)
    : options_(options),
      graph_(graph),
      m_sessions_(obs::CounterIn(metrics, "mining.sessions")),
      m_paths_(obs::CounterIn(metrics, "mining.paths")),
      m_topology_rejects_(obs::CounterIn(metrics, "mining.topology_rejects")),
      g_tracked_(obs::GaugeIn(metrics, "mining.tracked")) {
  const std::size_t capacity = options_.EffectiveCapacity();
  summaries_.reserve(options_.max_length - options_.min_length + 1);
  for (std::size_t length = options_.min_length;
       length <= options_.max_length; ++length) {
    summaries_.emplace_back(capacity, options_.window_paths);
  }
}

void PathMiner::AddSession(const std::vector<PageId>& pages) {
  ++sessions_seen_;
  m_sessions_.Increment();
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  // A path is real navigation only when every hop is a hyperlink; one
  // probe per hop covers every overlapping n-gram of the session.
  if (graph_ != nullptr && pages.size() >= 2) {
    hop_ok_.resize(pages.size() - 1);
    for (std::size_t i = 0; i + 1 < pages.size(); ++i) {
      hop_ok_[i] = graph_->HasLink(pages[i], pages[i + 1]) ? 1 : 0;
    }
  }
  for (std::size_t length = options_.min_length;
       length <= options_.max_length; ++length) {
    if (pages.size() < length) break;
    StreamSummary& summary = summaries_[length - options_.min_length];
    for (std::size_t start = 0; start + length <= pages.size(); ++start) {
      bool valid = true;
      if (graph_ != nullptr) {
        for (std::size_t i = 0; i + 1 < length; ++i) {
          if (!hop_ok_[start + i]) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) {
        ++rejected;
        continue;
      }
      if (summary.Offer(pages.data() + start, length, next_first_seen_)) {
        ++next_first_seen_;
      }
      ++offered;
    }
  }
  m_paths_.Increment(offered);
  m_topology_rejects_.Increment(rejected);
  if (g_tracked_.enabled()) g_tracked_.Set(tracked());
}

std::uint64_t PathMiner::paths_processed() const {
  std::uint64_t total = 0;
  for (const StreamSummary& summary : summaries_) {
    total += summary.paths_processed();
  }
  return total;
}

std::size_t PathMiner::tracked() const {
  std::size_t total = 0;
  for (const StreamSummary& summary : summaries_) total += summary.tracked();
  return total;
}

std::vector<PatternEstimate> PathMiner::TopK(std::size_t k,
                                             std::size_t length) const {
  if (k == 0) k = options_.top_k;
  std::vector<PatternEstimate> all;
  if (length == 0) {
    all.reserve(tracked());
    for (const StreamSummary& summary : summaries_) summary.AppendAll(&all);
  } else if (length >= options_.min_length && length <= options_.max_length) {
    SummaryFor(length).AppendAll(&all);
  }
  std::sort(all.begin(), all.end(), PatternOrderBefore);
  if (all.size() > k) all.resize(k);
  return all;
}

std::string PathMiner::PatternsJson(std::size_t k, std::size_t length) const {
  if (k == 0) k = options_.top_k;
  const std::vector<PatternEstimate> top = TopK(k, length);
  std::string json = "{\"k\":" + std::to_string(k) +
                     ",\"length\":" + std::to_string(length) +
                     ",\"sessions\":" + std::to_string(sessions_seen_) +
                     ",\"paths\":" + std::to_string(paths_processed()) +
                     ",\"capacity\":" +
                     std::to_string(options_.EffectiveCapacity()) +
                     ",\"patterns\":[";
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i != 0) json += ',';
    json += "{\"path\":[";
    for (std::size_t p = 0; p < top[i].path.size(); ++p) {
      if (p != 0) json += ',';
      json += std::to_string(top[i].path[p]);
    }
    json += "],\"count\":" + std::to_string(top[i].count) +
            ",\"error\":" + std::to_string(top[i].error) + "}";
  }
  json += "]}";
  return json;
}

Status PathMiner::SerializeState(std::vector<std::string>* frames) const {
  ckpt::Encoder header;
  header.PutUvarint(kMinerStateMagic);
  header.PutUvarint(options_.min_length);
  header.PutUvarint(options_.max_length);
  header.PutUvarint(sessions_seen_);
  header.PutUvarint(next_first_seen_);
  frames->push_back(header.Release());
  for (const StreamSummary& summary : summaries_) {
    ckpt::Encoder encoder;
    summary.Serialize(&encoder);
    frames->push_back(encoder.Release());
  }
  return Status::OK();
}

Status PathMiner::RestoreState(std::span<const std::string> frames) {
  if (frames.size() != summaries_.size() + 1) {
    return Status::ParseError(
        "mining state holds " + std::to_string(frames.size()) +
        " frames, expected " + std::to_string(summaries_.size() + 1));
  }
  ckpt::Decoder header(frames[0]);
  WUM_ASSIGN_OR_RETURN(const std::uint64_t magic, header.GetUvarint());
  if (magic != kMinerStateMagic) {
    return Status::ParseError("mining state header magic mismatch");
  }
  WUM_ASSIGN_OR_RETURN(const std::uint64_t min_length, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(const std::uint64_t max_length, header.GetUvarint());
  if (min_length != options_.min_length || max_length != options_.max_length) {
    return Status::InvalidArgument(
        "mining state was written for lengths " + std::to_string(min_length) +
        ".." + std::to_string(max_length) + ", configured " +
        std::to_string(options_.min_length) + ".." +
        std::to_string(options_.max_length));
  }
  WUM_ASSIGN_OR_RETURN(sessions_seen_, header.GetUvarint());
  WUM_ASSIGN_OR_RETURN(next_first_seen_, header.GetUvarint());
  WUM_RETURN_NOT_OK(header.ExpectEnd());
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    ckpt::Decoder decoder(frames[i + 1]);
    WUM_RETURN_NOT_OK(summaries_[i].Restore(&decoder));
    WUM_RETURN_NOT_OK(decoder.ExpectEnd());
  }
  if (g_tracked_.enabled()) g_tracked_.Set(tracked());
  return Status::OK();
}

MiningSink::MiningSink(SessionSink* downstream, const MinerOptions& options,
                       const WebGraph* graph, obs::MetricRegistry* metrics)
    : downstream_(downstream),
      miner_(options, graph, metrics),
      m_batches_(obs::CounterIn(metrics, "mining.batches")),
      h_flush_us_(obs::HistogramIn(metrics, "mining.flush_latency_us")),
      worker_(&MiningSink::WorkerLoop, this) {
  pending_.reserve(options.batch_sessions);
}

MiningSink::~MiningSink() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Status MiningSink::Accept(const std::string& client_ip, Session session) {
  // Mine only sessions the downstream actually absorbed: a RetryingSink
  // may call Accept repeatedly for one session, and a refusal ends in
  // quarantine, not delivery — either way the session must count at
  // most once, on success.
  std::vector<PageId> pages = session.PageSequence();
  if (downstream_ != nullptr) {
    WUM_RETURN_NOT_OK(downstream_->Accept(client_ip, std::move(session)));
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  pending_.push_back(std::move(pages));
  if (pending_.size() >= miner_.options().batch_sessions) {
    // Double-watermark backpressure: block at kMaxQueuedBatches, resume
    // once the miner has drained to half. Waking the producer only at
    // the low watermark (and the worker only on the empty -> non-empty
    // transition below) keeps the two threads from ping-ponging a
    // context switch per batch on saturated single-core hosts.
    if (queue_.size() >= kMaxQueuedBatches) {
      space_available_.wait(
          lock, [this] { return queue_.size() <= kMaxQueuedBatches / 2; });
    }
    queue_.push_back(std::move(pending_));
    pending_.clear();
    pending_.reserve(miner_.options().batch_sessions);
    if (queue_.size() == 1) work_available_.notify_one();
  }
  return Status::OK();
}

bool MiningSink::MineOneBatch() const {
  std::lock_guard<std::mutex> mine_lock(miner_mutex_);
  std::vector<std::vector<PageId>> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.empty()) return false;
    batch = std::move(queue_.front());
    queue_.pop_front();
    // Producers wait for the low watermark; every descent passes
    // through it one pop at a time, so this can't miss a waiter.
    if (queue_.size() == kMaxQueuedBatches / 2) {
      space_available_.notify_all();
    }
  }
  obs::ScopedTimer timer(h_flush_us_);
  for (const std::vector<PageId>& pages : batch) {
    miner_.AddSession(pages);
  }
  m_batches_.Increment();
  return true;
}

void MiningSink::DrainAll() const {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!pending_.empty()) {
      queue_.push_back(std::move(pending_));
      pending_.clear();
    }
  }
  while (MineOneBatch()) {
  }
}

void MiningSink::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_available_.wait(lock,
                           [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
    }
    MineOneBatch();
  }
}

void MiningSink::Flush() { DrainAll(); }

std::vector<PatternEstimate> MiningSink::TopK(std::size_t k,
                                              std::size_t length) const {
  DrainAll();
  std::lock_guard<std::mutex> lock(miner_mutex_);
  return miner_.TopK(k, length);
}

std::string MiningSink::PatternsJson(std::size_t k, std::size_t length) const {
  DrainAll();
  std::lock_guard<std::mutex> lock(miner_mutex_);
  return miner_.PatternsJson(k, length);
}

std::uint64_t MiningSink::sessions_seen() const {
  DrainAll();
  std::lock_guard<std::mutex> lock(miner_mutex_);
  return miner_.sessions_seen();
}

std::size_t MiningSink::queued_batches() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

Status MiningSink::SerializeState(std::vector<std::string>* frames) const {
  DrainAll();
  std::lock_guard<std::mutex> lock(miner_mutex_);
  return miner_.SerializeState(frames);
}

Status MiningSink::RestoreState(std::span<const std::string> frames) {
  std::scoped_lock lock(miner_mutex_, queue_mutex_);
  pending_.clear();
  queue_.clear();
  space_available_.notify_all();
  return miner_.RestoreState(frames);
}

}  // namespace wum::mine
