// StreamSummary: the SpaceSaving (Metwally et al.) stream-summary over
// navigation paths — the bounded-memory core of wum::mine. Replaces the
// stranded online_pattern_counter prototype's std::map + linear-scan
// eviction with the paper's actual structure: nodes hang off
// count-ordered buckets in a doubly-linked chain, so increment and
// min-eviction are O(1) and a query is one ordered walk.
//
// Guarantees (all-time mode, N = paths_processed):
//   * estimates never undercount:  true count <= estimate
//   * bounded overcount:           estimate - error <= true count
//   * any path with true count > N / capacity is tracked.
//
// With a decay window the same bounds hold against the decayed stream
// (counts halve every window_paths offers); see docs/mining.md.
//
// Determinism: every structural decision (victim choice, bucket order)
// is a function of the offer sequence alone, and Serialize writes nodes
// in chain order so Restore rebuilds the identical structure — a
// resumed summary evicts exactly as the uninterrupted one would.

#ifndef WUM_MINE_STREAM_SUMMARY_H_
#define WUM_MINE_STREAM_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wum/ckpt/codec.h"
#include "wum/common/result.h"
#include "wum/topology/web_graph.h"

namespace wum::mine {

/// One tracked path and its SpaceSaving estimate.
struct PatternEstimate {
  std::vector<PageId> path;
  /// Estimated occurrence count (never below the true count).
  std::uint64_t count = 0;
  /// Maximum overestimation (count - error <= true count).
  std::uint64_t error = 0;
  /// Monotonic insertion sequence: when this path first entered the
  /// summary. The deterministic tie-breaker of TopK.
  std::uint64_t first_seen = 0;

  friend bool operator==(const PatternEstimate&,
                         const PatternEstimate&) = default;
};

/// The one TopK ordering everywhere (summaries, miner, PATTERNS JSON):
/// count descending, then first-seen sequence ascending, then path
/// lexicographic — deterministic given the counts, pinned by test.
bool PatternOrderBefore(const PatternEstimate& a, const PatternEstimate& b);

/// SpaceSaving summary over paths of one length (the length itself is
/// the caller's concern — any page-id vector can be offered).
class StreamSummary {
 public:
  /// `capacity` >= 1 bounds the tracked paths; `window_paths` as in
  /// MinerOptions (0 = all time).
  StreamSummary(std::size_t capacity, std::uint64_t window_paths);

  StreamSummary(StreamSummary&&) noexcept = default;
  StreamSummary& operator=(StreamSummary&&) noexcept = default;

  /// Counts one path occurrence. `first_seen_seq` is consumed (stamped
  /// on the entry) only when the path newly enters the summary; returns
  /// true in that case so the caller can advance its sequence counter.
  bool Offer(const PageId* pages, std::size_t length,
             std::uint64_t first_seen_seq);
  bool Offer(const std::vector<PageId>& path, std::uint64_t first_seen_seq) {
    return Offer(path.data(), path.size(), first_seen_seq);
  }

  /// Top-k entries under PatternOrderBefore.
  std::vector<PatternEstimate> TopK(std::size_t k) const;

  /// Appends every tracked entry (unsorted) — used by PathMiner to
  /// merge summaries before one global sort.
  void AppendAll(std::vector<PatternEstimate>* out) const;

  /// Halves every count and error (dropping zeroed entries) — the decay
  /// step of window mode, also callable directly.
  void Decay();

  /// Paths offered so far, after decay halving (the N of the bound).
  std::uint64_t paths_processed() const { return paths_processed_; }
  std::size_t tracked() const { return tracked_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t window_paths() const { return window_paths_; }
  std::uint64_t decays() const { return decays_; }

  /// Exact structural snapshot / restore (see class comment). Restore
  /// refuses a snapshot taken under a different capacity or window.
  void Serialize(ckpt::Encoder* encoder) const;
  Status Restore(ckpt::Decoder* decoder);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::string key;  // packed path (4 bytes LE per page)
    std::uint64_t hash = 0;  // HashKey(key), cached for probe and evict
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::uint64_t first_seen = 0;
    std::uint32_t bucket = kNil;
    std::uint32_t prev = kNil;  // within the bucket's node list
    std::uint32_t next = kNil;
  };

  /// One distinct count value; nodes with that count hang off its list.
  /// Buckets chain in ascending count order, head = minimum.
  struct Bucket {
    std::uint64_t count = 0;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  /// Detaching a node can free its (now empty) bucket; the anchors are
  /// where a replacement bucket would link in: `prev` is the surviving
  /// bucket before the insertion point (kNil = chain head), `next` the
  /// one after.
  struct Anchors {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint32_t AllocNode();
  std::uint32_t AllocBucket(std::uint64_t count);
  void FreeBucket(std::uint32_t b);
  void AppendToBucket(std::uint32_t b, std::uint32_t n);
  Anchors DetachFromBucket(std::uint32_t n);
  void LinkBucketBetween(std::uint32_t b, Anchors anchors);
  /// Moves node `n` (already detached conceptually) to count
  /// `new_count`, reusing or creating the right bucket.
  void PlaceWithCount(std::uint32_t n, std::uint64_t new_count);
  static std::vector<PageId> UnpackPath(std::string_view key);
  /// Inline mix over 8-byte chunks: on the emit hot path the
  /// out-of-line std::hash call and the node-per-entry map were the
  /// measurable mining cost, so the index is a flat open-addressing
  /// table of node ids (linear probing, load factor <= 1/2).
  static std::uint64_t HashKey(std::string_view key);
  /// The slot holding `key`, or the empty slot where it would insert.
  std::size_t FindSlot(std::string_view key, std::uint64_t hash) const;
  /// Removes `key` (which must be present) with backward-shift
  /// deletion, keeping every survivor reachable from its ideal slot.
  void EraseKey(std::string_view key, std::uint64_t hash);
  void AppendEstimate(std::uint32_t n, std::vector<PatternEstimate>* out) const;
  /// Appends node `n` at the chain tail assuming non-decreasing counts
  /// (the rebuild path of Decay / Restore).
  void AppendInChainOrder(std::uint32_t n);

  std::size_t capacity_ = 0;
  std::uint64_t window_paths_ = 0;
  std::uint64_t paths_processed_ = 0;
  std::uint64_t offers_since_decay_ = 0;
  std::uint64_t decays_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::uint32_t min_bucket_ = kNil;  // chain head (smallest count)
  std::uint32_t max_bucket_ = kNil;  // chain tail (largest count)
  std::vector<std::uint32_t> slots_;  // node id or kNil; size power of two
  std::size_t slot_mask_ = 0;
  std::size_t tracked_ = 0;
  std::string key_buf_;  // reused per Offer to avoid an allocation
};

}  // namespace wum::mine

#endif  // WUM_MINE_STREAM_SUMMARY_H_
