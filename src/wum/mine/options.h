// Configuration of the online frequent-path miner (wum::mine). Split
// from path_miner.h so EngineOptions can store a MinerOptions by value
// without pulling the miner implementation into every engine user.

#ifndef WUM_MINE_OPTIONS_H_
#define WUM_MINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "wum/common/result.h"

namespace wum::mine {

/// Tuning of one PathMiner: which path lengths are mined, how many
/// paths each per-length SpaceSaving summary tracks, and how "now" is
/// defined (all time vs. a decayed recent window).
struct MinerOptions {
  /// Default answer size of TopK / the PATTERNS admin command.
  std::size_t top_k = 10;
  /// Contiguous path lengths mined: every length in
  /// [min_length, max_length] gets its own summary.
  std::size_t min_length = 2;
  std::size_t max_length = 3;
  /// Tracked paths per length (the SpaceSaving capacity; the error
  /// bound of a summary is paths_processed / capacity). 0 derives
  /// max(1024, 8 * top_k).
  std::size_t capacity = 0;
  /// 0 mines all time. Otherwise every summary halves its counts after
  /// this many offered paths (exponential decay), so estimates weight
  /// the recent window; see docs/mining.md for the exact semantics.
  std::uint64_t window_paths = 0;
  /// Sessions buffered per MiningSink hand-off batch, so the serialized
  /// emit path pays the mining cost once per batch, not per session.
  std::size_t batch_sessions = 32;

  /// The capacity each summary actually uses (resolves the 0 default).
  std::size_t EffectiveCapacity() const {
    if (capacity != 0) return capacity;
    const std::size_t derived = 8 * top_k;
    return derived < 1024 ? 1024 : derived;
  }
};

/// Rejects zero k / capacity-after-derivation, an empty or inverted
/// length range, min_length < 1, a window smaller than the capacity
/// (which would decay tracked paths faster than they can accumulate)
/// and a zero batch size.
Status ValidateMinerOptions(const MinerOptions& options);

}  // namespace wum::mine

#endif  // WUM_MINE_OPTIONS_H_
