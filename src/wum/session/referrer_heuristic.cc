#include "wum/session/referrer_heuristic.h"

#include <vector>

namespace wum {

ReferrerSessionizer::ReferrerSessionizer(const WebGraph* graph)
    : ReferrerSessionizer(graph, Options()) {}

ReferrerSessionizer::ReferrerSessionizer(const WebGraph* graph,
                                         Options options)
    : graph_(graph), options_(options) {}

Result<std::vector<Session>> ReferrerSessionizer::Reconstruct(
    const std::vector<ReferredRequest>& requests) const {
  const TimeSeconds rho = options_.thresholds.max_page_stay;
  const TimeSeconds delta = options_.thresholds.max_session_duration;

  std::vector<Session> done;
  // Open sessions, most recently active last.
  std::vector<Session> open;
  std::vector<bool> page_seen(graph_->num_pages(), false);

  TimeSeconds previous_timestamp = 0;
  bool first = true;
  for (const ReferredRequest& request : requests) {
    if (request.page >= graph_->num_pages()) {
      return Status::InvalidArgument("request references page " +
                                     std::to_string(request.page) +
                                     " outside the topology");
    }
    if (request.referrer != kInvalidPage &&
        request.referrer >= graph_->num_pages()) {
      return Status::InvalidArgument("referrer outside the topology");
    }
    if (!first && request.timestamp < previous_timestamp) {
      return Status::InvalidArgument(
          "request stream not sorted by timestamp");
    }
    first = false;
    previous_timestamp = request.timestamp;

    // Retire sessions that can no longer be extended.
    for (std::size_t i = 0; i < open.size();) {
      if (request.timestamp - open[i].requests.back().timestamp > rho) {
        done.push_back(std::move(open[i]));
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    const bool linked_referrer =
        request.referrer != kInvalidPage &&
        graph_->HasLink(request.referrer, request.page);
    bool placed = false;
    if (linked_referrer) {
      // Most recently active open session headed by the referrer.
      for (std::size_t i = open.size(); i-- > 0;) {
        Session& session = open[i];
        if (session.requests.back().page == request.referrer &&
            request.timestamp - session.requests.front().timestamp <=
                delta) {
          session.requests.push_back(
              PageRequest{request.page, request.timestamp});
          // Move to the back: most recently active.
          if (i + 1 != open.size()) {
            Session moved = std::move(session);
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
            open.push_back(std::move(moved));
          }
          placed = true;
          break;
        }
      }
      if (!placed && page_seen[request.referrer]) {
        // Cache backtrack: the referrer was re-viewed locally, then this
        // request branched from it. Its revisit left no log record, so
        // it enters the reconstruction with the branch's timestamp.
        Session session;
        session.requests.push_back(
            PageRequest{request.referrer, request.timestamp});
        session.requests.push_back(
            PageRequest{request.page, request.timestamp});
        open.push_back(std::move(session));
        placed = true;
      }
    }
    if (!placed) {
      Session session;
      session.requests.push_back(
          PageRequest{request.page, request.timestamp});
      open.push_back(std::move(session));
    }
    page_seen[request.page] = true;
    if (request.referrer != kInvalidPage) page_seen[request.referrer] = true;
  }
  for (Session& session : open) done.push_back(std::move(session));
  return done;
}

}  // namespace wum
