#include "wum/session/session.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace wum {

TimeSeconds Session::Duration() const {
  if (requests.size() <= 1) return 0;
  return requests.back().timestamp - requests.front().timestamp;
}

std::vector<PageId> Session::PageSequence() const {
  std::vector<PageId> pages;
  pages.reserve(requests.size());
  for (const PageRequest& request : requests) pages.push_back(request.page);
  return pages;
}

std::string SessionToString(const Session& session) {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < session.requests.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << 'P' << session.requests[i].page << " @"
        << session.requests[i].timestamp;
  }
  oss << ']';
  return oss.str();
}

Session MakeSession(const std::vector<PageId>& pages,
                    const std::vector<TimeSeconds>& timestamps) {
  assert(pages.size() == timestamps.size());
  Session session;
  session.requests.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    session.requests.push_back(PageRequest{pages[i], timestamps[i]});
  }
  return session;
}

Status ValidateRequestStream(std::span<const PageRequest> requests,
                             std::size_t num_pages) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].page >= num_pages) {
      return Status::InvalidArgument(
          "request " + std::to_string(i) + " references page " +
          std::to_string(requests[i].page) + " outside the topology (" +
          std::to_string(num_pages) + " pages)");
    }
    if (i > 0 && requests[i].timestamp < requests[i - 1].timestamp) {
      return Status::InvalidArgument(
          "request stream not sorted by timestamp at index " +
          std::to_string(i));
    }
  }
  return Status::OK();
}

bool SatisfiesTimestampRule(const Session& session,
                            TimeSeconds max_page_stay) {
  for (std::size_t i = 1; i < session.requests.size(); ++i) {
    const TimeSeconds gap =
        session.requests[i].timestamp - session.requests[i - 1].timestamp;
    if (gap < 0 || gap > max_page_stay) return false;
  }
  return true;
}

bool SatisfiesTopologyRule(const Session& session, const WebGraph& graph) {
  for (std::size_t i = 1; i < session.requests.size(); ++i) {
    if (!graph.HasLink(session.requests[i - 1].page,
                       session.requests[i].page)) {
      return false;
    }
  }
  return true;
}

bool SatisfiesNavigationRule(const Session& session, const WebGraph& graph) {
  for (std::size_t i = 1; i < session.requests.size(); ++i) {
    bool has_referrer = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (graph.HasLink(session.requests[j].page, session.requests[i].page)) {
        has_referrer = true;
        break;
      }
    }
    if (!has_referrer) return false;
  }
  return true;
}

bool ContainsAsSubstring(const std::vector<PageId>& haystack,
                         const std::vector<PageId>& needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

bool ContainsAsSubsequence(const std::vector<PageId>& haystack,
                           const std::vector<PageId>& needle) {
  std::size_t matched = 0;
  for (PageId page : haystack) {
    if (matched == needle.size()) break;
    if (page == needle[matched]) ++matched;
  }
  return matched == needle.size();
}

}  // namespace wum
