// Sessionizer: common interface of the four reactive session
// reconstruction heuristics evaluated in the paper.

#ifndef WUM_SESSION_SESSIONIZER_H_
#define WUM_SESSION_SESSIONIZER_H_

#include <span>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// A batch session reconstruction heuristic. Implementations are
/// stateless with respect to Reconstruct calls (safe to reuse across
/// users); configuration is fixed at construction.
class Sessionizer {
 public:
  virtual ~Sessionizer() = default;

  /// Short identifier for reports, e.g. "heur4-smart-sra".
  virtual std::string name() const = 0;

  /// Rebuilds sessions from one user's page request stream. Taking a
  /// span lets callers hand over any slice of a larger per-user buffer
  /// (windowed replays, shard-local views) without copying.
  ///
  /// `requests` must be sorted by non-decreasing timestamp (as a server
  /// access log is); passing an unsorted stream returns InvalidArgument.
  virtual Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const = 0;
};

}  // namespace wum

#endif  // WUM_SESSION_SESSIONIZER_H_
