// Core data model of session reconstruction: page requests, sessions, and
// the rule predicates (timestamp-ordering rule, topology rule) that the
// paper's Smart-SRA guarantees for its output.

#ifndef WUM_SESSION_SESSION_H_
#define WUM_SESSION_SESSION_H_

#include <compare>
#include <span>
#include <string>
#include <vector>

#include "wum/common/status.h"
#include "wum/common/time.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// One page access by one user, as recovered from the access log
/// (IP/user identity is handled one level up by the partitioner).
struct PageRequest {
  PageId page = kInvalidPage;
  TimeSeconds timestamp = 0;

  /// Ordering is lexicographic (page, then timestamp); defined so session
  /// lists can be sorted deterministically for dedup and stable output.
  friend auto operator<=>(const PageRequest&, const PageRequest&) = default;
};

/// An ordered sequence of page requests attributed to one user visit.
struct Session {
  std::vector<PageRequest> requests;

  bool empty() const { return requests.empty(); }
  std::size_t size() const { return requests.size(); }

  /// Wall time between first and last request (0 for <= 1 request).
  TimeSeconds Duration() const;

  /// Page ids in request order.
  std::vector<PageId> PageSequence() const;

  friend bool operator==(const Session&, const Session&) = default;
};

/// Renders "[P3 @120, P7 @185]" for debugging and test failure messages.
std::string SessionToString(const Session& session);

/// Builds a session from parallel page/timestamp lists (test convenience).
Session MakeSession(const std::vector<PageId>& pages,
                    const std::vector<TimeSeconds>& timestamps);

/// Checks that `requests` is sorted by non-decreasing timestamp and all
/// pages are valid ids for `num_pages` (heuristics require both).
Status ValidateRequestStream(std::span<const PageRequest> requests,
                             std::size_t num_pages);

/// Timestamp-ordering rule (paper §3): strictly increasing timestamps are
/// not required — equal stamps are tolerated — but order must be
/// non-decreasing and every consecutive gap must be <= max_page_stay.
bool SatisfiesTimestampRule(const Session& session,
                            TimeSeconds max_page_stay);

/// Topology rule (paper §3): every consecutive page pair in the session is
/// connected by a hyperlink from the first to the second.
bool SatisfiesTopologyRule(const Session& session, const WebGraph& graph);

/// Navigation-oriented rule (paper §2.2): every page except the first has
/// at least one *earlier* page in the same session with a hyperlink to it.
bool SatisfiesNavigationRule(const Session& session, const WebGraph& graph);

/// True iff `needle`'s page sequence occurs as a *contiguous substring* of
/// `haystack`'s page sequence. This is the paper's capture relation: its
/// §5.1 example rejects [P1,P9,P3,P5,P8] as a capture of [P1,P3,P5]
/// because "P9 interrupts R", i.e. matches must be uninterrupted.
bool ContainsAsSubstring(const std::vector<PageId>& haystack,
                         const std::vector<PageId>& needle);

/// Gap-tolerant variant (true subsequence matching), used only by the
/// capture-relation ablation bench.
bool ContainsAsSubsequence(const std::vector<PageId>& haystack,
                           const std::vector<PageId>& needle);

}  // namespace wum

#endif  // WUM_SESSION_SESSION_H_
