// InstrumentedSessionizer: a decorator wrapping any batch Sessionizer
// with wum::obs metrics — per-call reconstruction latency and running
// session/request totals — without the heuristics themselves knowing
// about observability. Tools wrap whatever the HeuristicRegistry built:
//
//   auto inner = registry.CreateBatch("smart-sra", context);
//   InstrumentedSessionizer sessionizer(std::move(*inner), &metrics);
//   auto sessions = sessionizer.Reconstruct(requests);  // timed

#ifndef WUM_SESSION_INSTRUMENTED_SESSIONIZER_H_
#define WUM_SESSION_INSTRUMENTED_SESSIONIZER_H_

#include <memory>
#include <string>
#include <utility>

#include "wum/obs/metrics.h"
#include "wum/session/sessionizer.h"

namespace wum {

/// Decorates `inner` with metrics registered under
/// "sessionizer.<metric_name>.*" (metric_name defaults to inner->name()):
///   .reconstruct_calls        one per Reconstruct invocation
///   .requests_in              total requests across invocations
///   .sessions_emitted         total sessions returned
///   .reconstruct_latency_us   wall time of one Reconstruct call
/// A null registry disables every handle; the wrapper then only costs
/// the virtual dispatch it already shares with the inner sessionizer.
class InstrumentedSessionizer : public Sessionizer {
 public:
  InstrumentedSessionizer(std::unique_ptr<Sessionizer> inner,
                          obs::MetricRegistry* metrics);
  InstrumentedSessionizer(std::unique_ptr<Sessionizer> inner,
                          obs::MetricRegistry* metrics,
                          const std::string& metric_name);

  std::string name() const override { return inner_->name(); }

  Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const override;

 private:
  std::unique_ptr<Sessionizer> inner_;
  // Mutated from const Reconstruct: handles are thread-safe by design.
  mutable obs::Counter reconstruct_calls_;
  mutable obs::Counter requests_in_;
  mutable obs::Counter sessions_emitted_;
  mutable obs::Histogram reconstruct_latency_us_;
};

}  // namespace wum

#endif  // WUM_SESSION_INSTRUMENTED_SESSIONIZER_H_
