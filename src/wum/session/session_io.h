// Session (de)serialization: a line-oriented text format used by the CLI
// tools to pass reconstructed or ground-truth sessions between pipeline
// stages.

#ifndef WUM_SESSION_SESSION_IO_H_
#define WUM_SESSION_SESSION_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// A session attributed to a user key (client IP or IP+agent composite).
struct UserSession {
  std::string user_key;
  Session session;

  friend bool operator==(const UserSession&, const UserSession&) = default;
};

/// Text format, one session per line:
///   websra-sessions 1
///   <user_key>\t<page>:<timestamp>\t<page>:<timestamp>...
/// The user key must not contain tab or newline characters. Blank lines
/// and lines starting with '#' are ignored on input.
void WriteSessionsText(const std::vector<UserSession>& sessions,
                       std::ostream* out);

Result<std::vector<UserSession>> ReadSessionsText(std::istream* in);

/// Convenience file wrappers.
Status WriteSessionsFile(const std::vector<UserSession>& sessions,
                         const std::string& path);
Result<std::vector<UserSession>> ReadSessionsFile(const std::string& path);

}  // namespace wum

#endif  // WUM_SESSION_SESSION_IO_H_
