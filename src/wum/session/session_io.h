// Session (de)serialization: a line-oriented text format and a compact
// CRC-framed binary format used by the CLI tools to pass reconstructed
// or ground-truth sessions between pipeline stages. Readers auto-detect
// the format from the header line.

#ifndef WUM_SESSION_SESSION_IO_H_
#define WUM_SESSION_SESSION_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "wum/common/result.h"
#include "wum/session/session.h"

namespace wum {

/// On-disk session serialization. Both carry the same data; binary is
/// smaller, checksummed (ckpt codec frames) and appendable, which is
/// what the checkpointing session journal needs.
enum class SessionFormat {
  kText,
  kBinary,
};

/// A session attributed to a user key (client IP or IP+agent composite).
struct UserSession {
  std::string user_key;
  Session session;

  friend bool operator==(const UserSession&, const UserSession&) = default;
};

/// Text format, one session per line:
///   websra-sessions 1
///   <user_key>\t<page>:<timestamp>\t<page>:<timestamp>...
/// The user key must not contain tab or newline characters. Blank lines
/// and lines starting with '#' are ignored on input.
void WriteSessionsText(const std::vector<UserSession>& sessions,
                       std::ostream* out);

Result<std::vector<UserSession>> ReadSessionsText(std::istream* in);

/// Binary format: the header line "websra-sessions-bin 1\n", then one
/// CRC32-framed record per session (see wum/ckpt/codec.h for the frame
/// layout) holding the user key and the session's requests. Truncated,
/// corrupt or wrong-version input fails with a precise ParseError; the
/// stream must be opened in binary mode.
Status WriteSessionsBinary(const std::vector<UserSession>& sessions,
                           std::ostream* out);

Result<std::vector<UserSession>> ReadSessionsBinary(std::istream* in);

/// First line of a binary session file, without the newline
/// ("websra-sessions-bin 1") — for incremental (journal-style) writers
/// that cannot use WriteSessionsBinary in one shot.
std::string SessionsBinaryHeaderLine();

/// Appends one session as a binary frame. The stream must already hold
/// the header line (SessionsBinaryHeaderLine + '\n'); appending to an
/// existing binary session file is valid, which is what makes the
/// format usable as a checkpointed session journal.
Status AppendSessionBinary(const UserSession& entry, std::ostream* out);

/// Convenience file wrappers. Reading auto-detects text vs binary from
/// the header line, so callers never have to know what wrote a file.
Status WriteSessionsFile(const std::vector<UserSession>& sessions,
                         const std::string& path,
                         SessionFormat format = SessionFormat::kText);
Result<std::vector<UserSession>> ReadSessionsFile(const std::string& path);

}  // namespace wum

#endif  // WUM_SESSION_SESSION_IO_H_
