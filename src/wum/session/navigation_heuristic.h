// heur3 — navigation-oriented session reconstruction with path completion
// (paper §2.2, after Cooley et al.).
//
// A new request P is appended to the current session when the last page
// links to P. Otherwise the heuristic assumes the user pressed "back":
// it locates the nearest earlier in-session page with a hyperlink to P and
// inserts the intervening pages in reverse order (the backward browser
// movements served from the local cache) before appending P. When no
// in-session page links to P at all, P opens a new session.

#ifndef WUM_SESSION_NAVIGATION_HEURISTIC_H_
#define WUM_SESSION_NAVIGATION_HEURISTIC_H_

#include <span>
#include <string>
#include <vector>

#include "wum/session/sessionizer.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Navigation-oriented heuristic. The paper evaluates it without time
/// bounds (and remarks that unbounded use can yield very long sessions);
/// an optional page-stay bound is provided for ablations.
class NavigationSessionizer : public Sessionizer {
 public:
  struct Options {
    /// When >= 0, a gap larger than this additionally cuts the session
    /// (disabled by default, matching the paper's heur3).
    TimeSeconds max_page_stay = -1;
  };

  /// `graph` must outlive the sessionizer. The one-argument form uses
  /// default Options (no time bound, matching the paper's heur3).
  explicit NavigationSessionizer(const WebGraph* graph);
  NavigationSessionizer(const WebGraph* graph, Options options);

  std::string name() const override { return "heur3-navigation"; }

  /// Inserted backward movements carry the timestamp of the request that
  /// triggered the path completion (the log has no stamp for cache hits),
  /// keeping output timestamps non-decreasing.
  Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const override;

 private:
  const WebGraph* graph_;
  Options options_;
};

}  // namespace wum

#endif  // WUM_SESSION_NAVIGATION_HEURISTIC_H_
