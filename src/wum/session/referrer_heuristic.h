// Referrer-oracle session reconstruction. The paper's reactive setting
// deliberately restricts itself to the seven CLF attributes ("IP address,
// request time, and URL are the only information needed"); richer
// Combined Log Format logs also carry the Referer header, which removes
// most of the ambiguity Smart-SRA has to reason around. This heuristic
// consumes that extra field and serves as the upper-bound comparator in
// the referrer ablation: the gap between Smart-SRA and the oracle is the
// price of having CLF-only data (the paper's §1 proactive-vs-reactive
// trade-off, quantified).

#ifndef WUM_SESSION_REFERRER_HEURISTIC_H_
#define WUM_SESSION_REFERRER_HEURISTIC_H_

#include <vector>

#include "wum/common/time.h"
#include "wum/session/session.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// One request with its Referer information.
struct ReferredRequest {
  PageId page = kInvalidPage;
  /// Page named by the Referer header; kInvalidPage for typed entries or
  /// external referrers.
  PageId referrer = kInvalidPage;
  TimeSeconds timestamp = 0;

  friend auto operator<=>(const ReferredRequest&,
                          const ReferredRequest&) = default;
};

/// Referrer-chaining sessionizer:
///   * a request whose referrer is the last page of an open session
///     (within the page-stay bound and the session-duration bound)
///     extends the most recently active such session;
///   * a request whose referrer was visited before but heads no open
///     session is a cache-backtrack branch: a new session
///     [referrer, page] opens (the revisit itself left no log record, so
///     its timestamp is taken from the branching request);
///   * anything else (typed URL, unknown or unlinked referrer) opens a
///     fresh single-page session.
/// Output sessions satisfy the topology and timestamp rules.
class ReferrerSessionizer {
 public:
  struct Options {
    TimeThresholds thresholds;
  };

  /// `graph` must outlive the sessionizer.
  explicit ReferrerSessionizer(const WebGraph* graph);
  ReferrerSessionizer(const WebGraph* graph, Options options);

  std::string name() const { return "heur5-referrer-oracle"; }

  /// `requests` must be sorted by non-decreasing timestamp with valid
  /// page ids (referrers may be kInvalidPage).
  Result<std::vector<Session>> Reconstruct(
      const std::vector<ReferredRequest>& requests) const;

 private:
  const WebGraph* graph_;
  Options options_;
};

}  // namespace wum

#endif  // WUM_SESSION_REFERRER_HEURISTIC_H_
