#include "wum/session/smart_sra.h"

#include <algorithm>
#include <cstdint>

#include "wum/session/time_heuristics.h"

namespace wum {

SmartSra::SmartSra(const WebGraph* graph) : SmartSra(graph, Options()) {}

SmartSra::SmartSra(const WebGraph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {}

std::vector<Session> SmartSra::Phase1(
    std::span<const PageRequest> requests) const {
  return SplitByBothTimeRules(requests, options_.thresholds);
}

Result<std::vector<Session>> SmartSra::Phase2(const Session& candidate) const {
  const std::vector<PageRequest>& reqs = candidate.requests;
  const std::size_t n = reqs.size();
  if (n <= 1) {
    std::vector<Session> result;
    if (n == 1) result.push_back(candidate);
    return result;
  }
  const TimeSeconds rho = options_.thresholds.max_page_stay;

  auto links_within_rho = [&](std::size_t from, std::size_t to) {
    const TimeSeconds gap = reqs[to].timestamp - reqs[from].timestamp;
    return gap >= 0 && gap <= rho &&
           graph_->HasLink(reqs[from].page, reqs[to].page);
  };

  // Chain fast path. When every occurrence has at most one in-candidate
  // referrer and at most one continuation, the link relation is a disjoint
  // union of forward chains and those chains are exactly the maximal
  // sessions, so the round machinery (and its per-round allocations) can
  // be skipped. Real navigation is overwhelmingly linear, so this covers
  // nearly every candidate; anything with a fork or join falls through to
  // the general algorithm. Guards: the deduplicate sort canonicalizes
  // session order (the general path's output order depends on removal
  // rounds), and max_sessions_per_candidate >= n makes the general path's
  // mid-extension overflow check unreachable for chains.
  constexpr std::size_t kChainFastPathMaxRequests = 64;
  if (n <= kChainFastPathMaxRequests && options_.deduplicate &&
      options_.max_sessions_per_candidate >= n) {
    std::uint8_t in_deg[kChainFastPathMaxRequests] = {};
    std::uint8_t out_deg[kChainFastPathMaxRequests] = {};
    std::uint8_t next[kChainFastPathMaxRequests] = {};
    bool chains = true;
    for (std::size_t i = 1; chains && i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (!links_within_rho(j, i)) continue;
        if (++in_deg[i] > 1 || ++out_deg[j] > 1) {
          chains = false;
          break;
        }
        next[j] = static_cast<std::uint8_t>(i);
      }
    }
    if (chains) {
      std::vector<Session> result;
      for (std::size_t head = 0; head < n; ++head) {
        if (in_deg[head] != 0) continue;
        Session session;
        std::size_t i = head;
        while (true) {
          session.requests.push_back(reqs[i]);
          if (out_deg[i] != 1) break;
          i = next[i];
        }
        result.push_back(std::move(session));
      }
      std::sort(result.begin(), result.end(),
                [](const Session& a, const Session& b) {
                  return a.requests < b.requests;
                });
      result.erase(std::unique(result.begin(), result.end()), result.end());
      return result;
    }
  }

  // Sessions are index lists into `reqs` so duplicate page ids keep their
  // distinct occurrences and timestamps.
  std::vector<std::vector<std::size_t>> sessions;
  std::vector<bool> alive(n, true);
  std::size_t remaining = n;

  // How many live earlier occurrences link to each occurrence. Step I reads
  // these counts instead of rescanning every pair each round (which made
  // chain-shaped candidates — the common case for real navigation — cubic);
  // counts are decremented as referrers are removed, so "count == 0" is
  // exactly the original "no remaining earlier referrer" predicate.
  std::vector<std::uint32_t> referrer_count(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (links_within_rho(j, i)) ++referrer_count[i];
    }
  }

  std::vector<std::size_t> starts;
  while (remaining > 0) {
    // Step I: occurrences with no remaining earlier referrer. The earliest
    // remaining occurrence always qualifies, so progress is guaranteed.
    starts.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && referrer_count[i] == 0) starts.push_back(i);
    }

    // Step II: remove them from the candidate.
    for (std::size_t i : starts) alive[i] = false;
    remaining -= starts.size();
    for (std::size_t s : starts) {
      for (std::size_t i = s + 1; i < n; ++i) {
        if (alive[i] && links_within_rho(s, i)) --referrer_count[i];
      }
    }

    // Step III: extend the session set.
    if (sessions.empty()) {
      for (std::size_t i : starts) sessions.push_back({i});
      continue;
    }
    if (starts.size() == 1 && sessions.size() == 1 &&
        links_within_rho(sessions[0].back(), starts[0])) {
      // Lone session extended by a lone start: append in place instead of
      // rebuilding the session set. This is every round of a pure chain.
      sessions[0].push_back(starts[0]);
      continue;
    }
    std::vector<std::vector<std::size_t>> next_sessions;
    std::vector<bool> extended(sessions.size(), false);
    for (std::size_t i : starts) {
      bool placed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (links_within_rho(sessions[s].back(), i)) {
          next_sessions.push_back(sessions[s]);
          next_sessions.back().push_back(i);
          extended[s] = true;
          placed = true;
          if (next_sessions.size() > options_.max_sessions_per_candidate) {
            return Status::OutOfRange(
                "Smart-SRA phase 2 exceeded max_sessions_per_candidate (" +
                std::to_string(options_.max_sessions_per_candidate) +
                "); the topology induces exponentially many maximal paths");
          }
        }
      }
      if (!placed) {
        // Unreachable for inputs produced by phase 1 (every late start's
        // freshest referrer is the tail of some session; see the design
        // doc), but kept so no occurrence is ever silently dropped when
        // Phase2 is driven directly with arbitrary candidates.
        next_sessions.push_back({i});
      }
    }
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (!extended[s]) next_sessions.push_back(sessions[s]);
    }
    sessions = std::move(next_sessions);
  }

  std::vector<Session> result;
  result.reserve(sessions.size());
  for (const auto& indices : sessions) {
    Session session;
    session.requests.reserve(indices.size());
    for (std::size_t i : indices) session.requests.push_back(reqs[i]);
    result.push_back(std::move(session));
  }
  if (options_.deduplicate) {
    std::sort(result.begin(), result.end(),
              [](const Session& a, const Session& b) {
                return a.requests < b.requests;
              });
    result.erase(std::unique(result.begin(), result.end()), result.end());
  }
  return result;
}

Result<std::vector<Session>> SmartSra::Reconstruct(
    std::span<const PageRequest> requests) const {
  WUM_RETURN_NOT_OK(ValidateRequestStream(requests, graph_->num_pages()));
  std::vector<Session> output;
  for (const Session& candidate : Phase1(requests)) {
    WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions, Phase2(candidate));
    for (Session& session : sessions) output.push_back(std::move(session));
  }
  return output;
}

}  // namespace wum
