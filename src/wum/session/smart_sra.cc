#include "wum/session/smart_sra.h"

#include <algorithm>

#include "wum/session/time_heuristics.h"

namespace wum {

SmartSra::SmartSra(const WebGraph* graph) : SmartSra(graph, Options()) {}

SmartSra::SmartSra(const WebGraph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {}

std::vector<Session> SmartSra::Phase1(
    std::span<const PageRequest> requests) const {
  return SplitByBothTimeRules(requests, options_.thresholds);
}

Result<std::vector<Session>> SmartSra::Phase2(const Session& candidate) const {
  const std::vector<PageRequest>& reqs = candidate.requests;
  const std::size_t n = reqs.size();
  const TimeSeconds rho = options_.thresholds.max_page_stay;

  // Sessions are index lists into `reqs` so duplicate page ids keep their
  // distinct occurrences and timestamps.
  std::vector<std::vector<std::size_t>> sessions;
  std::vector<bool> alive(n, true);
  std::size_t remaining = n;

  auto links_within_rho = [&](std::size_t from, std::size_t to) {
    const TimeSeconds gap = reqs[to].timestamp - reqs[from].timestamp;
    return gap >= 0 && gap <= rho &&
           graph_->HasLink(reqs[from].page, reqs[to].page);
  };

  while (remaining > 0) {
    // Step I: occurrences with no remaining earlier referrer. The earliest
    // remaining occurrence always qualifies, so progress is guaranteed.
    std::vector<std::size_t> starts;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      bool has_referrer = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (alive[j] && links_within_rho(j, i)) {
          has_referrer = true;
          break;
        }
      }
      if (!has_referrer) starts.push_back(i);
    }

    // Step II: remove them from the candidate.
    for (std::size_t i : starts) alive[i] = false;
    remaining -= starts.size();

    // Step III: extend the session set.
    if (sessions.empty()) {
      for (std::size_t i : starts) sessions.push_back({i});
      continue;
    }
    std::vector<std::vector<std::size_t>> next_sessions;
    std::vector<bool> extended(sessions.size(), false);
    for (std::size_t i : starts) {
      bool placed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (links_within_rho(sessions[s].back(), i)) {
          next_sessions.push_back(sessions[s]);
          next_sessions.back().push_back(i);
          extended[s] = true;
          placed = true;
          if (next_sessions.size() > options_.max_sessions_per_candidate) {
            return Status::OutOfRange(
                "Smart-SRA phase 2 exceeded max_sessions_per_candidate (" +
                std::to_string(options_.max_sessions_per_candidate) +
                "); the topology induces exponentially many maximal paths");
          }
        }
      }
      if (!placed) {
        // Unreachable for inputs produced by phase 1 (every late start's
        // freshest referrer is the tail of some session; see the design
        // doc), but kept so no occurrence is ever silently dropped when
        // Phase2 is driven directly with arbitrary candidates.
        next_sessions.push_back({i});
      }
    }
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (!extended[s]) next_sessions.push_back(sessions[s]);
    }
    sessions = std::move(next_sessions);
  }

  std::vector<Session> result;
  result.reserve(sessions.size());
  for (const auto& indices : sessions) {
    Session session;
    session.requests.reserve(indices.size());
    for (std::size_t i : indices) session.requests.push_back(reqs[i]);
    result.push_back(std::move(session));
  }
  if (options_.deduplicate) {
    std::sort(result.begin(), result.end(),
              [](const Session& a, const Session& b) {
                return a.requests < b.requests;
              });
    result.erase(std::unique(result.begin(), result.end()), result.end());
  }
  return result;
}

Result<std::vector<Session>> SmartSra::Reconstruct(
    std::span<const PageRequest> requests) const {
  WUM_RETURN_NOT_OK(ValidateRequestStream(requests, graph_->num_pages()));
  std::vector<Session> output;
  for (const Session& candidate : Phase1(requests)) {
    WUM_ASSIGN_OR_RETURN(std::vector<Session> sessions, Phase2(candidate));
    for (Session& session : sessions) output.push_back(std::move(session));
  }
  return output;
}

}  // namespace wum
