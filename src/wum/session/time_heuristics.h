// Time-oriented session reconstruction heuristics (paper §2.1):
//
//  * heur1 — total session duration bound delta (default 30 min): a request
//    joins the current session iff t_i - t_0 <= delta; the first request
//    beyond the bound opens a new session.
//  * heur2 — page-stay bound rho (default 10 min): a request joins iff
//    t_i - t_{i-1} <= rho.
//
// Both are cut-point heuristics: they partition the request stream, so
// the union of their output sessions is exactly the input stream.

#ifndef WUM_SESSION_TIME_HEURISTICS_H_
#define WUM_SESSION_TIME_HEURISTICS_H_

#include <span>
#include <string>
#include <vector>

#include "wum/common/time.h"
#include "wum/session/sessionizer.h"

namespace wum {

/// heur1: bounds total session duration by delta.
class SessionDurationSessionizer : public Sessionizer {
 public:
  /// `max_session_duration` must be >= 0.
  explicit SessionDurationSessionizer(
      TimeSeconds max_session_duration = Minutes(30));

  std::string name() const override { return "heur1-duration"; }

  Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const override;

  TimeSeconds max_session_duration() const { return max_session_duration_; }

 private:
  TimeSeconds max_session_duration_;
};

/// heur2: bounds the gap between consecutive requests by rho.
class PageStaySessionizer : public Sessionizer {
 public:
  /// `max_page_stay` must be >= 0.
  explicit PageStaySessionizer(TimeSeconds max_page_stay = Minutes(10));

  std::string name() const override { return "heur2-pagestay"; }

  Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const override;

  TimeSeconds max_page_stay() const { return max_page_stay_; }

 private:
  TimeSeconds max_page_stay_;
};

/// Smart-SRA phase 1 (also reusable standalone): applies *both* time
/// bounds, cutting whenever the page-stay bound or the total-duration
/// bound would be violated.
std::vector<Session> SplitByBothTimeRules(
    std::span<const PageRequest> requests, const TimeThresholds& thresholds);

}  // namespace wum

#endif  // WUM_SESSION_TIME_HEURISTICS_H_
