// heur4 — Smart-SRA, the paper's contribution (§3).
//
// Phase 1 cuts the per-user request stream into candidate sessions using
// both time-oriented rules (total duration <= delta, page stay <= rho).
// Phase 2 turns each candidate into the set of *maximal* sessions
// satisfying both the timestamp-ordering rule and the topology rule, by
// repeatedly
//   (I)   collecting the occurrences with no remaining in-candidate
//         referrer (an earlier occurrence whose page links to them within
//         the page-stay bound),
//   (II)  removing them from the candidate, and
//   (III) appending them to every constructed session whose last page
//         links to them within the page-stay bound (unextended sessions
//         are carried over unchanged).
//
// Differences from the paper's pseudocode (see DESIGN.md §2): referrers
// are earlier pages (the printed `j>i` contradicts both the formal
// definition and the Table 4 trace), and the step-III time check compares
// against the session's last element. Additionally the extension requires
// a non-negative time difference, because occurrence-removal order is not
// timestamp order and the paper's own timestamp-ordering rule would
// otherwise be violated.

#ifndef WUM_SESSION_SMART_SRA_H_
#define WUM_SESSION_SMART_SRA_H_

#include <span>
#include <string>
#include <vector>

#include "wum/common/time.h"
#include "wum/session/sessionizer.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// Smart Session Reconstruction Algorithm.
class SmartSra : public Sessionizer {
 public:
  struct Options {
    /// delta / rho (paper defaults 30 min / 10 min).
    TimeThresholds thresholds;
    /// Phase 2 enumerates every maximal path, which is exponential on
    /// adversarial topologies (chained link diamonds). Reconstruct
    /// returns OutOfRange once one candidate's session set exceeds this.
    std::size_t max_sessions_per_candidate = 65536;
    /// Drop exact-duplicate sessions from each candidate's output.
    bool deduplicate = true;
  };

  /// `graph` must outlive the sessionizer. The one-argument form uses
  /// default Options (paper thresholds).
  explicit SmartSra(const WebGraph* graph);
  SmartSra(const WebGraph* graph, Options options);

  std::string name() const override { return "heur4-smart-sra"; }

  Result<std::vector<Session>> Reconstruct(
      std::span<const PageRequest> requests) const override;

  /// Phase 1 only: candidate sessions obeying both time rules.
  std::vector<Session> Phase1(std::span<const PageRequest> requests) const;

  /// Phase 2 only: maximal topology-consistent sessions of one candidate.
  /// The candidate must be timestamp-sorted.
  Result<std::vector<Session>> Phase2(const Session& candidate) const;

  const Options& options() const { return options_; }

 private:
  const WebGraph* graph_;
  Options options_;
};

}  // namespace wum

#endif  // WUM_SESSION_SMART_SRA_H_
