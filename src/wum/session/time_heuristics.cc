#include "wum/session/time_heuristics.h"

#include <limits>

namespace wum {
namespace {

// All three time heuristics are "cut" rules differing only in the cut
// predicate: given the pending session and the next request, decide
// whether the request starts a new session.
template <typename ShouldCut>
std::vector<Session> SplitStream(std::span<const PageRequest> requests,
                                 ShouldCut should_cut) {
  std::vector<Session> sessions;
  Session current;
  for (const PageRequest& request : requests) {
    if (!current.empty() && should_cut(current, request)) {
      sessions.push_back(std::move(current));
      current = Session{};
    }
    current.requests.push_back(request);
  }
  if (!current.empty()) sessions.push_back(std::move(current));
  return sessions;
}

}  // namespace

SessionDurationSessionizer::SessionDurationSessionizer(
    TimeSeconds max_session_duration)
    : max_session_duration_(max_session_duration) {}

Result<std::vector<Session>> SessionDurationSessionizer::Reconstruct(
    std::span<const PageRequest> requests) const {
  WUM_RETURN_NOT_OK(ValidateRequestStream(
      requests, static_cast<std::size_t>(kInvalidPage)));
  return SplitStream(requests,
                     [this](const Session& session, const PageRequest& next) {
                       return next.timestamp -
                                  session.requests.front().timestamp >
                              max_session_duration_;
                     });
}

PageStaySessionizer::PageStaySessionizer(TimeSeconds max_page_stay)
    : max_page_stay_(max_page_stay) {}

Result<std::vector<Session>> PageStaySessionizer::Reconstruct(
    std::span<const PageRequest> requests) const {
  WUM_RETURN_NOT_OK(ValidateRequestStream(
      requests, static_cast<std::size_t>(kInvalidPage)));
  return SplitStream(requests,
                     [this](const Session& session, const PageRequest& next) {
                       return next.timestamp -
                                  session.requests.back().timestamp >
                              max_page_stay_;
                     });
}

std::vector<Session> SplitByBothTimeRules(
    std::span<const PageRequest> requests,
    const TimeThresholds& thresholds) {
  return SplitStream(
      requests, [&thresholds](const Session& session, const PageRequest& next) {
        return next.timestamp - session.requests.back().timestamp >
                   thresholds.max_page_stay ||
               next.timestamp - session.requests.front().timestamp >
                   thresholds.max_session_duration;
      });
}

}  // namespace wum
