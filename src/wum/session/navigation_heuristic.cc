#include "wum/session/navigation_heuristic.h"

namespace wum {

NavigationSessionizer::NavigationSessionizer(const WebGraph* graph)
    : NavigationSessionizer(graph, Options()) {}

NavigationSessionizer::NavigationSessionizer(const WebGraph* graph,
                                             Options options)
    : graph_(graph), options_(options) {}

Result<std::vector<Session>> NavigationSessionizer::Reconstruct(
    std::span<const PageRequest> requests) const {
  WUM_RETURN_NOT_OK(ValidateRequestStream(requests, graph_->num_pages()));
  std::vector<Session> sessions;
  Session current;
  for (const PageRequest& request : requests) {
    const bool time_cut =
        options_.max_page_stay >= 0 && !current.empty() &&
        request.timestamp - current.requests.back().timestamp >
            options_.max_page_stay;
    if (time_cut) {
      sessions.push_back(std::move(current));
      current = Session{};
    }
    if (current.empty()) {
      current.requests.push_back(request);
      continue;
    }
    if (graph_->HasLink(current.requests.back().page, request.page)) {
      current.requests.push_back(request);
      continue;
    }
    // Path completion: find the nearest earlier page with a link to the
    // new page. (The last page was already checked above.)
    std::size_t referrer_index = current.requests.size();  // "none"
    for (std::size_t j = current.requests.size() - 1; j-- > 0;) {
      if (graph_->HasLink(current.requests[j].page, request.page)) {
        referrer_index = j;
        break;
      }
    }
    if (referrer_index == current.requests.size()) {
      // No in-session referrer: the new page starts a fresh session.
      sessions.push_back(std::move(current));
      current = Session{};
      current.requests.push_back(request);
      continue;
    }
    // Insert backward browser movements from the page *before* the current
    // last one down to the referrer, then the new request itself.
    for (std::size_t j = current.requests.size() - 1; j-- > referrer_index;) {
      current.requests.push_back(
          PageRequest{current.requests[j].page, request.timestamp});
    }
    current.requests.push_back(request);
  }
  if (!current.empty()) sessions.push_back(std::move(current));
  return sessions;
}

}  // namespace wum
