#include "wum/session/session_io.h"

#include <fstream>
#include <ostream>

#include "wum/common/string_util.h"

namespace wum {
namespace {

constexpr std::string_view kMagic = "websra-sessions";
constexpr int kVersion = 1;

}  // namespace

void WriteSessionsText(const std::vector<UserSession>& sessions,
                       std::ostream* out) {
  *out << kMagic << ' ' << kVersion << '\n';
  for (const UserSession& entry : sessions) {
    *out << entry.user_key;
    for (const PageRequest& request : entry.session.requests) {
      *out << '\t' << request.page << ':' << request.timestamp;
    }
    *out << '\n';
  }
}

Result<std::vector<UserSession>> ReadSessionsText(std::istream* in) {
  std::vector<UserSession> sessions;
  std::string line;
  bool saw_magic = false;
  int line_number = 0;
  auto error = [&](const std::string& what) {
    return Status::ParseError("sessions line " + std::to_string(line_number) +
                              ": " + what);
  };
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    if (!saw_magic) {
      std::string_view header = StripWhitespace(line);
      std::string expected = std::string(kMagic) + " " +
                             std::to_string(kVersion);
      if (header != expected) {
        return error("expected header '" + expected + "'");
      }
      saw_magic = true;
      continue;
    }
    std::vector<std::string_view> fields = SplitString(line, '\t');
    UserSession entry;
    entry.user_key = std::string(fields[0]);
    if (entry.user_key.empty()) return error("empty user key");
    for (std::size_t i = 1; i < fields.size(); ++i) {
      std::vector<std::string_view> parts = SplitString(fields[i], ':');
      if (parts.size() != 2) {
        return error("request field must be '<page>:<timestamp>'");
      }
      WUM_ASSIGN_OR_RETURN(std::uint64_t page, ParseUint64(parts[0]));
      WUM_ASSIGN_OR_RETURN(std::int64_t timestamp, ParseInt64(parts[1]));
      if (page >= kInvalidPage) return error("page id out of range");
      entry.session.requests.push_back(
          PageRequest{static_cast<PageId>(page), timestamp});
    }
    sessions.push_back(std::move(entry));
  }
  if (!saw_magic) return Status::ParseError("empty sessions stream");
  return sessions;
}

Status WriteSessionsFile(const std::vector<UserSession>& sessions,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  WriteSessionsText(sessions, &out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<UserSession>> ReadSessionsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadSessionsText(&in);
}

}  // namespace wum
