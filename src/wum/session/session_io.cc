#include "wum/session/session_io.h"

#include <fstream>
#include <optional>
#include <ostream>

#include "wum/ckpt/checkpoint.h"
#include "wum/common/string_util.h"

namespace wum {
namespace {

constexpr std::string_view kMagic = "websra-sessions";
constexpr std::string_view kBinaryMagic = "websra-sessions-bin";
constexpr int kVersion = 1;

/// "websra-sessions-bin 1" — the binary format's first line. A text
/// header line keeps the two formats distinguishable with one getline
/// (and a binary file recognizable in a pager); everything after it is
/// CRC-framed binary.
std::string BinaryHeader() {
  return std::string(kBinaryMagic) + " " + std::to_string(kVersion);
}

}  // namespace

void WriteSessionsText(const std::vector<UserSession>& sessions,
                       std::ostream* out) {
  *out << kMagic << ' ' << kVersion << '\n';
  for (const UserSession& entry : sessions) {
    *out << entry.user_key;
    for (const PageRequest& request : entry.session.requests) {
      *out << '\t' << request.page << ':' << request.timestamp;
    }
    *out << '\n';
  }
}

Result<std::vector<UserSession>> ReadSessionsText(std::istream* in) {
  std::vector<UserSession> sessions;
  std::string line;
  bool saw_magic = false;
  int line_number = 0;
  auto error = [&](const std::string& what) {
    return Status::ParseError("sessions line " + std::to_string(line_number) +
                              ": " + what);
  };
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    if (!saw_magic) {
      std::string_view header = StripWhitespace(line);
      std::string expected = std::string(kMagic) + " " +
                             std::to_string(kVersion);
      if (header != expected) {
        return error("expected header '" + expected + "'");
      }
      saw_magic = true;
      continue;
    }
    std::vector<std::string_view> fields = SplitString(line, '\t');
    UserSession entry;
    entry.user_key = std::string(fields[0]);
    if (entry.user_key.empty()) return error("empty user key");
    for (std::size_t i = 1; i < fields.size(); ++i) {
      std::vector<std::string_view> parts = SplitString(fields[i], ':');
      if (parts.size() != 2) {
        return error("request field must be '<page>:<timestamp>'");
      }
      WUM_ASSIGN_OR_RETURN(std::uint64_t page, ParseUint64(parts[0]));
      WUM_ASSIGN_OR_RETURN(std::int64_t timestamp, ParseInt64(parts[1]));
      if (page >= kInvalidPage) return error("page id out of range");
      entry.session.requests.push_back(
          PageRequest{static_cast<PageId>(page), timestamp});
    }
    sessions.push_back(std::move(entry));
  }
  if (!saw_magic) return Status::ParseError("empty sessions stream");
  return sessions;
}

std::string SessionsBinaryHeaderLine() { return BinaryHeader(); }

Status AppendSessionBinary(const UserSession& entry, std::ostream* out) {
  if (entry.user_key.empty()) {
    return Status::InvalidArgument("empty user key");
  }
  ckpt::Encoder encoder;
  encoder.PutString(entry.user_key);
  ckpt::EncodeSession(entry.session, &encoder);
  ckpt::FrameWriter writer(out);
  return writer.WriteFrame(encoder.buffer());
}

Status WriteSessionsBinary(const std::vector<UserSession>& sessions,
                           std::ostream* out) {
  *out << BinaryHeader() << '\n';
  for (const UserSession& entry : sessions) {
    WUM_RETURN_NOT_OK(AppendSessionBinary(entry, out));
  }
  out->flush();
  if (!*out) return Status::IoError("write failed");
  return Status::OK();
}

Result<std::vector<UserSession>> ReadSessionsBinary(std::istream* in) {
  std::string header;
  if (!std::getline(*in, header)) {
    return Status::ParseError("empty sessions stream");
  }
  if (StripWhitespace(header) != BinaryHeader()) {
    return Status::ParseError("expected header '" + BinaryHeader() + "'");
  }
  ckpt::FrameReader reader(in);
  std::vector<UserSession> sessions;
  auto error = [&sessions](const std::string& what) {
    return Status::ParseError("session " + std::to_string(sessions.size()) +
                              ": " + what);
  };
  while (true) {
    WUM_ASSIGN_OR_RETURN(std::optional<std::string> frame,
                         reader.ReadFrame());
    if (!frame.has_value()) break;
    ckpt::Decoder decoder(*frame);
    UserSession entry;
    WUM_ASSIGN_OR_RETURN(entry.user_key, decoder.GetString());
    if (entry.user_key.empty()) return error("empty user key");
    Status status = ckpt::DecodeSession(&decoder, &entry.session);
    if (status.ok()) status = decoder.ExpectEnd();
    if (!status.ok()) return error(status.message());
    sessions.push_back(std::move(entry));
  }
  return sessions;
}

Status WriteSessionsFile(const std::vector<UserSession>& sessions,
                         const std::string& path, SessionFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  if (format == SessionFormat::kBinary) {
    WUM_RETURN_NOT_OK(WriteSessionsBinary(sessions, &out));
  } else {
    WriteSessionsText(sessions, &out);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<UserSession>> ReadSessionsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  // Auto-detect: a binary file's first line is its magic; anything else
  // (including future binary versions, which the binary reader rejects
  // with the precise version error) goes down its own parser.
  std::string first_line;
  std::getline(in, first_line);
  in.clear();
  in.seekg(0);
  if (StripWhitespace(first_line).substr(0, kBinaryMagic.size()) ==
      kBinaryMagic) {
    return ReadSessionsBinary(&in);
  }
  return ReadSessionsText(&in);
}

}  // namespace wum
