#include "wum/session/instrumented_sessionizer.h"

namespace wum {

InstrumentedSessionizer::InstrumentedSessionizer(
    std::unique_ptr<Sessionizer> inner, obs::MetricRegistry* metrics)
    : InstrumentedSessionizer(std::move(inner), metrics, std::string()) {}

InstrumentedSessionizer::InstrumentedSessionizer(
    std::unique_ptr<Sessionizer> inner, obs::MetricRegistry* metrics,
    const std::string& metric_name)
    : inner_(std::move(inner)) {
  const std::string prefix =
      "sessionizer." + (metric_name.empty() ? inner_->name() : metric_name) +
      ".";
  reconstruct_calls_ = obs::CounterIn(metrics, prefix + "reconstruct_calls");
  requests_in_ = obs::CounterIn(metrics, prefix + "requests_in");
  sessions_emitted_ = obs::CounterIn(metrics, prefix + "sessions_emitted");
  reconstruct_latency_us_ =
      obs::HistogramIn(metrics, prefix + "reconstruct_latency_us");
}

Result<std::vector<Session>> InstrumentedSessionizer::Reconstruct(
    std::span<const PageRequest> requests) const {
  reconstruct_calls_.Increment();
  requests_in_.Increment(requests.size());
  Result<std::vector<Session>> sessions = [&] {
    obs::ScopedTimer timer(reconstruct_latency_us_);
    return inner_->Reconstruct(requests);
  }();
  if (sessions.ok()) sessions_emitted_.Increment(sessions->size());
  return sessions;
}

}  // namespace wum
