#include "wum/mining/markov_predictor.h"

#include <algorithm>

namespace wum {

MarkovPredictor::MarkovPredictor(std::size_t num_pages)
    : counts_(num_pages), row_totals_(num_pages, 0) {}

Status MarkovPredictor::Train(const std::vector<PageId>& session) {
  for (PageId page : session) {
    if (page >= counts_.size()) {
      return Status::InvalidArgument("session references page " +
                                     std::to_string(page) +
                                     " outside the model");
    }
  }
  for (std::size_t i = 1; i < session.size(); ++i) {
    ++counts_[session[i - 1]][session[i]];
    ++row_totals_[session[i - 1]];
    ++transitions_observed_;
  }
  return Status::OK();
}

Status MarkovPredictor::TrainAll(
    const std::vector<std::vector<PageId>>& sessions) {
  for (const std::vector<PageId>& session : sessions) {
    WUM_RETURN_NOT_OK(Train(session));
  }
  return Status::OK();
}

std::vector<PageId> MarkovPredictor::PredictNext(PageId page,
                                                 std::size_t k) const {
  if (page >= counts_.size() || k == 0) return {};
  const auto& row = counts_[page];
  std::vector<std::pair<PageId, std::uint64_t>> ranked(row.begin(), row.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<PageId> result;
  result.reserve(std::min(k, ranked.size()));
  for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
    result.push_back(ranked[i].first);
  }
  return result;
}

double MarkovPredictor::TransitionProbability(PageId from, PageId to) const {
  if (from >= counts_.size() || row_totals_[from] == 0) return 0.0;
  auto it = counts_[from].find(to);
  if (it == counts_[from].end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(row_totals_[from]);
}

std::size_t MarkovPredictor::states_observed() const {
  std::size_t states = 0;
  for (std::uint64_t total : row_totals_) {
    if (total > 0) ++states;
  }
  return states;
}

PredictionScore EvaluatePredictor(
    const MarkovPredictor& predictor,
    const std::vector<std::vector<PageId>>& test_sessions, std::size_t k) {
  PredictionScore score;
  for (const std::vector<PageId>& session : test_sessions) {
    for (std::size_t i = 1; i < session.size(); ++i) {
      std::vector<PageId> predicted = predictor.PredictNext(session[i - 1], k);
      if (predicted.empty()) {
        ++score.skipped;
        continue;
      }
      ++score.predictions;
      if (std::find(predicted.begin(), predicted.end(), session[i]) !=
          predicted.end()) {
        ++score.hits;
      }
    }
  }
  return score;
}

}  // namespace wum
