// AprioriAll-style sequential pattern miner (Agrawal & Srikant lineage),
// level-wise: frequent length-k patterns are joined into length-(k+1)
// candidates, pruned by the apriori property, then support-counted
// against the session database.

#ifndef WUM_MINING_APRIORI_ALL_H_
#define WUM_MINING_APRIORI_ALL_H_

#include <vector>

#include "wum/common/result.h"
#include "wum/mining/pattern.h"

namespace wum {

/// Miner configuration.
struct AprioriOptions {
  /// Minimum number of supporting sessions; must be >= 1.
  std::size_t min_support = 2;
  /// 0 = unbounded pattern length.
  std::size_t max_length = 0;
  /// Occurrence semantics (see MatchMode).
  MatchMode mode = MatchMode::kContiguous;
};

/// Level-wise frequent sequential pattern mining.
class AprioriAllMiner {
 public:
  explicit AprioriAllMiner(AprioriOptions options = AprioriOptions());

  /// Mines all frequent patterns of `sessions` (page-id sequences).
  /// Output is sorted by (length, pages) — identical ordering to
  /// BruteForceFrequentPatterns, enabling direct equivalence checks.
  Result<std::vector<SequentialPattern>> Mine(
      const std::vector<std::vector<PageId>>& sessions) const;

  const AprioriOptions& options() const { return options_; }

 private:
  AprioriOptions options_;
};

}  // namespace wum

#endif  // WUM_MINING_APRIORI_ALL_H_
