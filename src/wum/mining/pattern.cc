#include "wum/mining/pattern.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "wum/session/session.h"

namespace wum {

std::string_view MatchModeToString(MatchMode mode) {
  switch (mode) {
    case MatchMode::kContiguous:
      return "contiguous";
    case MatchMode::kSubsequence:
      return "subsequence";
  }
  return "unknown";
}

std::string PatternToString(const SequentialPattern& pattern) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < pattern.pages.size(); ++i) {
    if (i > 0) oss << " -> ";
    oss << 'P' << pattern.pages[i];
  }
  oss << " (support " << pattern.support << ')';
  return oss.str();
}

namespace {

bool Matches(const std::vector<PageId>& session,
             const std::vector<PageId>& pattern, MatchMode mode) {
  return mode == MatchMode::kContiguous
             ? ContainsAsSubstring(session, pattern)
             : ContainsAsSubsequence(session, pattern);
}

// Collects every distinct pattern of `session` up to max_length.
void EnumeratePatterns(const std::vector<PageId>& session,
                       std::size_t max_length, MatchMode mode,
                       std::set<std::vector<PageId>>* out) {
  if (mode == MatchMode::kContiguous) {
    for (std::size_t start = 0; start < session.size(); ++start) {
      std::vector<PageId> pattern;
      for (std::size_t len = 1;
           len <= max_length && start + len <= session.size(); ++len) {
        pattern.push_back(session[start + len - 1]);
        out->insert(pattern);
      }
    }
    return;
  }
  // Subsequences: DFS over index choices (exponential; test-sized only).
  std::vector<PageId> pattern;
  auto dfs = [&](auto&& self, std::size_t next_index) -> void {
    if (!pattern.empty()) out->insert(pattern);
    if (pattern.size() == max_length) return;
    for (std::size_t i = next_index; i < session.size(); ++i) {
      pattern.push_back(session[i]);
      self(self, i + 1);
      pattern.pop_back();
    }
  };
  dfs(dfs, 0);
}

}  // namespace

std::size_t CountSupport(const std::vector<PageId>& pattern,
                         const std::vector<std::vector<PageId>>& sessions,
                         MatchMode mode) {
  std::size_t support = 0;
  for (const std::vector<PageId>& session : sessions) {
    if (Matches(session, pattern, mode)) ++support;
  }
  return support;
}

std::vector<SequentialPattern> BruteForceFrequentPatterns(
    const std::vector<std::vector<PageId>>& sessions, std::size_t min_support,
    MatchMode mode, std::size_t max_length) {
  std::set<std::vector<PageId>> candidates;
  for (const std::vector<PageId>& session : sessions) {
    EnumeratePatterns(session, max_length, mode, &candidates);
  }
  std::vector<SequentialPattern> frequent;
  for (const std::vector<PageId>& candidate : candidates) {
    const std::size_t support = CountSupport(candidate, sessions, mode);
    if (support >= min_support) {
      frequent.push_back(SequentialPattern{candidate, support});
    }
  }
  std::sort(frequent.begin(), frequent.end(),
            [](const SequentialPattern& a, const SequentialPattern& b) {
              if (a.pages.size() != b.pages.size()) {
                return a.pages.size() < b.pages.size();
              }
              return a.pages < b.pages;
            });
  return frequent;
}

std::vector<SequentialPattern> FilterMaximalPatterns(
    std::vector<SequentialPattern> patterns, MatchMode mode) {
  std::vector<SequentialPattern> maximal;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < patterns.size() && !subsumed; ++j) {
      if (i == j || patterns[j].pages.size() <= patterns[i].pages.size()) {
        continue;
      }
      if (patterns[j].support >= patterns[i].support &&
          Matches(patterns[j].pages, patterns[i].pages, mode)) {
        subsumed = true;
      }
    }
    if (!subsumed) maximal.push_back(std::move(patterns[i]));
  }
  return maximal;
}

}  // namespace wum
