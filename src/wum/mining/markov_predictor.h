// Next-page prediction, the paper's headline WUM application ("web
// pre-fetching, link prediction"): a first-order Markov model over page
// transitions, trained on a session corpus. Session reconstruction
// quality propagates directly into prediction quality, which the
// prediction ablation bench quantifies per heuristic.

#ifndef WUM_MINING_MARKOV_PREDICTOR_H_
#define WUM_MINING_MARKOV_PREDICTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "wum/common/result.h"
#include "wum/topology/web_graph.h"

namespace wum {

/// First-order Markov chain over page transitions.
class MarkovPredictor {
 public:
  explicit MarkovPredictor(std::size_t num_pages);

  /// Accumulates the transitions of one session (consecutive page
  /// pairs). Sessions with out-of-range pages are rejected.
  Status Train(const std::vector<PageId>& session);

  /// Convenience: trains on a whole corpus.
  Status TrainAll(const std::vector<std::vector<PageId>>& sessions);

  /// The up-to-k most likely successors of `page`, most likely first
  /// (count ties broken by page id). Empty for unseen pages.
  std::vector<PageId> PredictNext(PageId page, std::size_t k) const;

  /// P(to | from) under the trained counts; 0 for unseen pairs.
  double TransitionProbability(PageId from, PageId to) const;

  /// Total transitions observed.
  std::uint64_t transitions_observed() const { return transitions_observed_; }
  /// Pages with at least one outgoing observation.
  std::size_t states_observed() const;

 private:
  std::vector<std::map<PageId, std::uint64_t>> counts_;
  std::vector<std::uint64_t> row_totals_;
  std::uint64_t transitions_observed_ = 0;
};

/// Outcome of scoring a predictor on a test corpus.
struct PredictionScore {
  std::uint64_t predictions = 0;  // transitions with a non-empty top-k
  std::uint64_t hits = 0;         // true successor inside the top-k
  std::uint64_t skipped = 0;      // transitions from unseen pages

  double hit_rate() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(predictions);
  }
};

/// Hit-rate@k over every transition of the test sessions: the model
/// predicts the top-k successors of the current page; a hit means the
/// session's true next page is among them.
PredictionScore EvaluatePredictor(
    const MarkovPredictor& predictor,
    const std::vector<std::vector<PageId>>& test_sessions, std::size_t k);

}  // namespace wum

#endif  // WUM_MINING_MARKOV_PREDICTOR_H_
