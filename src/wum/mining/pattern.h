// Sequential navigation patterns over reconstructed sessions — the
// pattern-discovery stage the paper motivates ("discovering useful
// patterns from these sessions by using pattern discovery techniques
// like apriori"). Includes a brute-force reference miner used to verify
// the AprioriAll implementation property-style.

#ifndef WUM_MINING_PATTERN_H_
#define WUM_MINING_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wum/topology/web_graph.h"

namespace wum {

/// How a pattern must occur inside a session to support it.
enum class MatchMode {
  /// Contiguous run of pages — frequent navigation *paths*. Natural for
  /// Smart-SRA output, whose sessions are hyperlink paths.
  kContiguous = 0,
  /// Order-preserving with gaps — classic sequential patterns.
  kSubsequence = 1,
};

std::string_view MatchModeToString(MatchMode mode);

/// A mined pattern and the number of sessions containing it.
struct SequentialPattern {
  std::vector<PageId> pages;
  std::size_t support = 0;

  friend bool operator==(const SequentialPattern&,
                         const SequentialPattern&) = default;
};

/// Renders "P3 -> P7 -> P1 (support 42)".
std::string PatternToString(const SequentialPattern& pattern);

/// Number of sessions containing `pattern` under `mode` (each session
/// counts at most once).
std::size_t CountSupport(const std::vector<PageId>& pattern,
                         const std::vector<std::vector<PageId>>& sessions,
                         MatchMode mode);

/// Reference miner: enumerates every occurring pattern up to
/// `max_length` by exhaustive generation and filters by support.
/// Exponential in kSubsequence mode — test-sized inputs only.
/// Patterns are returned sorted by (length, pages).
std::vector<SequentialPattern> BruteForceFrequentPatterns(
    const std::vector<std::vector<PageId>>& sessions, std::size_t min_support,
    MatchMode mode, std::size_t max_length);

/// Keeps only patterns not contained (under `mode`) in another retained
/// pattern with support >= theirs.
std::vector<SequentialPattern> FilterMaximalPatterns(
    std::vector<SequentialPattern> patterns, MatchMode mode);

}  // namespace wum

#endif  // WUM_MINING_PATTERN_H_
