#include "wum/mining/apriori_all.h"

#include <algorithm>
#include <map>
#include <set>

namespace wum {
namespace {

using Pattern = std::vector<PageId>;

// Distinct frequent single pages.
std::vector<SequentialPattern> MineLevel1(
    const std::vector<std::vector<PageId>>& sessions,
    std::size_t min_support) {
  std::map<PageId, std::size_t> support;
  std::set<PageId> in_session;
  for (const std::vector<PageId>& session : sessions) {
    in_session.clear();
    in_session.insert(session.begin(), session.end());
    for (PageId page : in_session) ++support[page];
  }
  std::vector<SequentialPattern> level;
  for (const auto& [page, count] : support) {
    if (count >= min_support) {
      level.push_back(SequentialPattern{{page}, count});
    }
  }
  return level;
}

// Contiguous mode: count the distinct k-grams of every session whose
// length-(k-1) prefix and suffix are both frequent (apriori property for
// contiguous patterns), in one linear pass.
std::vector<SequentialPattern> NextLevelContiguous(
    const std::vector<std::vector<PageId>>& sessions,
    const std::set<Pattern>& previous_frequent, std::size_t k,
    std::size_t min_support) {
  std::map<Pattern, std::size_t> support;
  std::set<Pattern> seen_in_session;
  for (const std::vector<PageId>& session : sessions) {
    if (session.size() < k) continue;
    seen_in_session.clear();
    for (std::size_t start = 0; start + k <= session.size(); ++start) {
      Pattern gram(session.begin() + static_cast<std::ptrdiff_t>(start),
                   session.begin() + static_cast<std::ptrdiff_t>(start + k));
      Pattern prefix(gram.begin(), gram.end() - 1);
      Pattern suffix(gram.begin() + 1, gram.end());
      if (!previous_frequent.contains(prefix) ||
          !previous_frequent.contains(suffix)) {
        continue;
      }
      if (seen_in_session.insert(gram).second) ++support[gram];
    }
  }
  std::vector<SequentialPattern> level;
  for (const auto& [gram, count] : support) {
    if (count >= min_support) level.push_back(SequentialPattern{gram, count});
  }
  return level;
}

// Subsequence mode: GSP-style join (a + last(b) when a's suffix equals
// b's prefix), apriori prune (every delete-one sub-pattern frequent),
// then a counting scan.
std::vector<SequentialPattern> NextLevelSubsequence(
    const std::vector<std::vector<PageId>>& sessions,
    const std::vector<SequentialPattern>& previous_level,
    const std::set<Pattern>& previous_frequent, std::size_t min_support) {
  std::set<Pattern> candidates;
  for (const SequentialPattern& a : previous_level) {
    for (const SequentialPattern& b : previous_level) {
      if (std::equal(a.pages.begin() + 1, a.pages.end(), b.pages.begin(),
                     b.pages.end() - 1)) {
        Pattern candidate = a.pages;
        candidate.push_back(b.pages.back());
        candidates.insert(std::move(candidate));
      }
    }
  }
  std::vector<SequentialPattern> level;
  Pattern sub;
  for (const Pattern& candidate : candidates) {
    bool prunable = false;
    for (std::size_t skip = 0; skip < candidate.size() && !prunable; ++skip) {
      sub.clear();
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        if (i != skip) sub.push_back(candidate[i]);
      }
      if (!previous_frequent.contains(sub)) prunable = true;
    }
    if (prunable) continue;
    const std::size_t support =
        CountSupport(candidate, sessions, MatchMode::kSubsequence);
    if (support >= min_support) {
      level.push_back(SequentialPattern{candidate, support});
    }
  }
  return level;
}

}  // namespace

AprioriAllMiner::AprioriAllMiner(AprioriOptions options)
    : options_(options) {}

Result<std::vector<SequentialPattern>> AprioriAllMiner::Mine(
    const std::vector<std::vector<PageId>>& sessions) const {
  if (options_.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  std::vector<SequentialPattern> all;
  std::vector<SequentialPattern> level =
      MineLevel1(sessions, options_.min_support);
  std::size_t k = 1;
  while (!level.empty()) {
    all.insert(all.end(), level.begin(), level.end());
    if (options_.max_length != 0 && k >= options_.max_length) break;
    std::set<Pattern> frequent_set;
    for (const SequentialPattern& pattern : level) {
      frequent_set.insert(pattern.pages);
    }
    ++k;
    level = options_.mode == MatchMode::kContiguous
                ? NextLevelContiguous(sessions, frequent_set, k,
                                      options_.min_support)
                : NextLevelSubsequence(sessions, level, frequent_set,
                                       options_.min_support);
  }
  std::sort(all.begin(), all.end(),
            [](const SequentialPattern& a, const SequentialPattern& b) {
              if (a.pages.size() != b.pages.size()) {
                return a.pages.size() < b.pages.size();
              }
              return a.pages < b.pages;
            });
  return all;
}

}  // namespace wum
