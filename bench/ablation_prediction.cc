// Prediction ablation: the paper names "web pre-fetching, link
// prediction" as the first applications of WUM. This bench trains a
// first-order Markov next-page model on each heuristic's reconstructed
// sessions and scores hit-rate@k against the *ground-truth* navigation
// of a held-out population on the same site — so session reconstruction
// quality is measured by the downstream product it exists to serve.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"
#include "wum/mining/markov_predictor.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Prediction ablation",
                               "training-session source (held-out test set)");

  wum::Rng site_rng(config.seed);
  wum::Result<wum::WebGraph> graph =
      wum::GenerateSite(config.topology_model, config.site, &site_rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  wum::Rng train_rng(config.seed ^ 0x7261696EULL);  // "rain"
  wum::Result<wum::Workload> train = wum::SimulateWorkload(
      *graph, config.profile, config.workload, &train_rng);
  wum::Rng test_rng(config.seed ^ 0x74657374ULL);  // "test"
  wum::Result<wum::Workload> test = wum::SimulateWorkload(
      *graph, config.profile, config.workload, &test_rng);
  if (!train.ok() || !test.ok()) {
    std::cerr << "simulation failed\n";
    return 1;
  }
  std::vector<std::vector<wum::PageId>> test_corpus;
  for (const wum::AgentRun& agent : test->agents) {
    for (const wum::Session& session : agent.trace.real_sessions) {
      test_corpus.push_back(session.PageSequence());
    }
  }

  wum::Table table({"training sessions", "hit@1 %", "hit@3 %", "hit@5 %",
                    "transitions", "states"});
  auto add_row = [&](const std::string& label,
                     const wum::MarkovPredictor& model) {
    std::vector<std::string> row{label};
    for (std::size_t k : {1u, 3u, 5u}) {
      row.push_back(wum::FormatDouble(
          wum::EvaluatePredictor(model, test_corpus, k).hit_rate() * 100.0,
          2));
    }
    row.push_back(std::to_string(model.transitions_observed()));
    row.push_back(std::to_string(model.states_observed()));
    table.AddRow(std::move(row));
  };

  for (const auto& heuristic :
       wum::MakePaperHeuristics(&graph.ValueOrDie(), config.thresholds)) {
    wum::MarkovPredictor model(graph->num_pages());
    for (const wum::AgentRun& agent : train->agents) {
      wum::Result<std::vector<wum::Session>> sessions =
          heuristic->Reconstruct(agent.trace.server_requests);
      if (!sessions.ok()) {
        std::cerr << sessions.status().ToString() << "\n";
        return 1;
      }
      for (const wum::Session& session : *sessions) {
        wum::Status trained = model.Train(session.PageSequence());
        if (!trained.ok()) {
          std::cerr << trained.ToString() << "\n";
          return 1;
        }
      }
    }
    add_row(heuristic->name(), model);
  }
  // Upper bound: train on the ground truth itself.
  wum::MarkovPredictor oracle_model(graph->num_pages());
  for (const wum::AgentRun& agent : train->agents) {
    for (const wum::Session& session : agent.trace.real_sessions) {
      (void)oracle_model.Train(session.PageSequence());
    }
  }
  add_row("ground truth (upper bound)", oracle_model);
  table.Render(&std::cout);
  std::cout << "\n# Hit@k: fraction of held-out ground-truth transitions "
               "whose true next page is in the\n"
            << "# model's top-k prediction for the current page.\n";
  return 0;
}
