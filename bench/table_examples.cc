// Reproduces the paper's worked examples (Tables 1-4) end to end on the
// Figure 1 topology and prints them in the paper's own terms, so the
// implementation can be eyeballed against the publication.

#include <iostream>

#include "wum/session/navigation_heuristic.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/topology/site_generator.h"

namespace {

using wum::Figure1PageName;
using wum::MakeSession;
using wum::PageId;
using wum::Session;

std::string Names(const Session& session) {
  std::string out = "[";
  for (std::size_t i = 0; i < session.size(); ++i) {
    if (i > 0) out += ", ";
    out += Figure1PageName(session.requests[i].page);
  }
  return out + "]";
}

void PrintSessions(const std::string& label,
                   const std::vector<Session>& sessions) {
  std::cout << label << "\n";
  for (const Session& session : sessions) {
    std::cout << "    " << Names(session) << "\n";
  }
}

}  // namespace

int main() {
  const wum::WebGraph graph = wum::MakeFigure1Topology();
  std::cout << "# Worked examples of the paper on the Figure 1 topology\n"
            << "# (pages P1, P13, P20, P23, P34, P49; start pages P1, P49).\n"
            << "#\n"
            << "# Table 1 request sequence: P1@0, P20@6, P13@15, P49@29, "
               "P34@32, P23@47 (minutes).\n\n";

  const auto table1 = MakeSession({0, 2, 1, 5, 4, 3},
                                  {wum::Minutes(0), wum::Minutes(6),
                                   wum::Minutes(15), wum::Minutes(29),
                                   wum::Minutes(32), wum::Minutes(47)});

  wum::SessionDurationSessionizer heur1;
  PrintSessions("heur1 (total duration <= 30 min), expected "
                "[P1,P20,P13,P49] [P34,P23]:",
                *heur1.Reconstruct(table1.requests));

  wum::PageStaySessionizer heur2;
  PrintSessions("\nheur2 (page stay <= 10 min), expected "
                "[P1,P20,P13] [P49,P34] [P23]:",
                *heur2.Reconstruct(table1.requests));

  wum::NavigationSessionizer heur3(&graph);
  PrintSessions("\nheur3 (navigation-oriented, Table 2 trace), expected "
                "[P1,P20,P1,P13,P49,P13,P34,P23]:",
                *heur3.Reconstruct(table1.requests));

  std::cout << "\n# Table 3 request sequence: P1@0, P20@6, P13@9, P49@12, "
               "P34@14, P23@15 (minutes).\n\n";
  const auto table3 = MakeSession({0, 2, 1, 5, 4, 3},
                                  {wum::Minutes(0), wum::Minutes(6),
                                   wum::Minutes(9), wum::Minutes(12),
                                   wum::Minutes(14), wum::Minutes(15)});
  wum::SmartSra heur4(&graph);
  PrintSessions("heur4 (Smart-SRA, Table 4 trace), expected "
                "[P1,P13,P34,P23] [P1,P13,P49,P23] [P1,P20,P23]:",
                *heur4.Reconstruct(table3.requests));

  std::cout << "\n# The behaviour-3 motif of §4: navigation "
               "[P1,P13,P34] then back to P1 and on to P20.\n"
            << "# Server log: [P1, P13, P34, P20] (the cached revisit of P1 "
               "is invisible).\n\n";
  const auto motif = MakeSession({0, 1, 4, 2}, {0, 130, 265, 450});
  PrintSessions("heur4 recovers the real sessions "
                "[P1,P13,P34] and [P1,P20]:",
                *heur4.Reconstruct(motif.requests));
  PrintSessions("\nheur2 on the same log (single seam-broken session):",
                *heur2.Reconstruct(motif.requests));
  return 0;
}
