// google-benchmark microbenches: throughput of every pipeline stage —
// CLF formatting/parsing, each sessionizer, the streaming pipeline,
// topology generation, capture matching and mining.
//
// Set WUM_METRICS_OUT=<path> to dump the wum::obs registry populated by
// the metrics-enabled benches as a JSON/CSV snapshot after the run (CI
// uploads it as a workflow artifact).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <sstream>

#include "wum/clf/clf_parser.h"
#include "wum/clf/clf_writer.h"
#include "wum/mine/options.h"
#include "wum/mining/apriori_all.h"
#include "wum/obs/metrics.h"
#include "wum/obs/trace.h"
#include "wum/stream/engine.h"
#include "wum/session/navigation_heuristic.h"
#include "wum/session/smart_sra.h"
#include "wum/session/time_heuristics.h"
#include "wum/simulator/workload.h"
#include "wum/stream/incremental_sessionizer.h"
#include "wum/topology/site_generator.h"

namespace wum {

/// Registry shared by the metrics-enabled benches; dumped by main when
/// WUM_METRICS_OUT is set. Counters accumulate across iterations, so the
/// snapshot reflects the whole benchmark run.
obs::MetricRegistry& BenchMetricsRegistry() {
  static obs::MetricRegistry* const registry = new obs::MetricRegistry();
  return *registry;
}

namespace {

// Shared fixture state, built once.
struct Fixture {
  WebGraph graph{0};
  Workload workload;
  std::vector<LogRecord> log;
  std::vector<LogRecordRef> log_refs;  // views into `log`, same order
  std::vector<std::string> log_lines;
  std::string log_text;  // log_lines joined with '\n' (chunk-parse input)
  std::vector<std::vector<PageRequest>> streams;  // per IP

  static const Fixture& Get() {
    static const Fixture* const fixture = [] {
      auto* f = new Fixture();
      Rng site_rng(99);
      SiteGeneratorOptions site;  // Table 5 defaults
      f->graph = *GenerateUniformSite(site, &site_rng);
      WorkloadOptions options;
      options.num_agents = 2000;
      Rng rng(1234);
      f->workload =
          *SimulateWorkload(f->graph, AgentProfile(), options, &rng);
      f->log = CollectServerLog(f->workload.ToAgentRequests());
      f->log_refs.reserve(f->log.size());
      f->log_lines.reserve(f->log.size());
      for (const LogRecord& record : f->log) {
        f->log_refs.push_back(ViewOf(record));
        f->log_lines.push_back(FormatClfLine(record));
      }
      for (const std::string& line : f->log_lines) {
        f->log_text += line;
        f->log_text += '\n';
      }
      for (const AgentRun& agent : f->workload.agents) {
        f->streams.push_back(agent.trace.server_requests);
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_ClfFormat(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FormatClfLine(fixture.log[i++ % fixture.log.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClfFormat);

void BM_ClfParse(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ParseClfLine(fixture.log_lines[i++ % fixture.log_lines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClfParse);

// Zero-copy chunk parsing: the whole fixture log in one ParseChunk call
// per iteration, records landing as LogRecordRef views (no per-field
// allocation). The spread over BM_ClfParse is what the owned-record
// Materialize step costs on the line-at-a-time path.
void BM_ClfParseChunk(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  std::size_t records = 0;
  std::vector<LogRecordRef> parsed;
  for (auto _ : state) {
    parsed.clear();
    ClfParser parser;
    if (!parser.ParseChunk(fixture.log_text, &parsed).ok()) {
      state.SkipWithError("parse failed");
      break;
    }
    benchmark::DoNotOptimize(parsed.data());
    records += parsed.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ClfParseChunk)->Unit(benchmark::kMillisecond);

template <typename MakeSessionizer>
void SessionizerLoop(benchmark::State& state, MakeSessionizer make) {
  const Fixture& fixture = Fixture::Get();
  auto sessionizer = make(fixture);
  std::size_t requests = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& stream = fixture.streams[i++ % fixture.streams.size()];
    requests += stream.size();
    benchmark::DoNotOptimize(sessionizer->Reconstruct(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}

void BM_SessionizeDuration(benchmark::State& state) {
  SessionizerLoop(state, [](const Fixture&) {
    return std::make_unique<SessionDurationSessionizer>();
  });
}
BENCHMARK(BM_SessionizeDuration);

void BM_SessionizePageStay(benchmark::State& state) {
  SessionizerLoop(state, [](const Fixture&) {
    return std::make_unique<PageStaySessionizer>();
  });
}
BENCHMARK(BM_SessionizePageStay);

void BM_SessionizeNavigation(benchmark::State& state) {
  SessionizerLoop(state, [](const Fixture& fixture) {
    return std::make_unique<NavigationSessionizer>(&fixture.graph);
  });
}
BENCHMARK(BM_SessionizeNavigation);

void BM_SessionizeSmartSra(benchmark::State& state) {
  SessionizerLoop(state, [](const Fixture& fixture) {
    return std::make_unique<SmartSra>(&fixture.graph);
  });
}
BENCHMARK(BM_SessionizeSmartSra);

void BM_StreamingPipelineEndToEnd(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  std::size_t records = 0;
  for (auto _ : state) {
    CallbackSessionSink sink(
        [](const std::string&, Session) { return Status::OK(); });
    SessionizeSink sessionize(
        [&fixture]() {
          return std::make_unique<IncrementalSmartSra>(&fixture.graph,
                                                       SmartSra::Options());
        },
        &sink, fixture.graph.num_pages());
    Pipeline pipeline(&sessionize);
    for (const LogRecord& record : fixture.log) {
      if (!pipeline.Accept(record).ok()) state.SkipWithError("accept failed");
    }
    if (!pipeline.Finish().ok()) state.SkipWithError("finish failed");
    records += fixture.log.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StreamingPipelineEndToEnd)->Unit(benchmark::kMillisecond);

// Batch granularity for the engine replays below: one partition pass and
// one queue hand-off per shard per 2048 records, the intended production
// shape of the zero-copy ingest path.
constexpr std::size_t kOfferBatchSize = 2048;

bool OfferAllBatched(StreamEngine* engine,
                     std::span<const LogRecordRef> refs) {
  for (std::size_t i = 0; i < refs.size(); i += kOfferBatchSize) {
    const std::size_t n = std::min(kOfferBatchSize, refs.size() - i);
    if (!engine->OfferBatch(refs.subspan(i, n)).ok()) return false;
  }
  return true;
}

// Engine scaling trajectory: the 2000-agent fixture replayed through the
// sharded StreamEngine at 1/2/4/8 shards (incremental Smart-SRA per
// user) via OfferBatch. items/s is the streaming sessionization
// throughput; on a multi-core host the 4-shard run should beat the
// single shard by >= 2x. UseRealTime: wall clock is the scaling metric,
// not the ingest thread's CPU time.
void StreamEngineShardedLoop(benchmark::State& state,
                             obs::MetricRegistry* metrics,
                             bool with_retry = false,
                             bool with_mining = false) {
  const Fixture& fixture = Fixture::Get();
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  std::size_t records = 0;
  for (auto _ : state) {
    CallbackSessionSink sink(
        [](const std::string&, Session) { return Status::OK(); });
    EngineOptions options;
    options.set_num_shards(shards)
        .set_queue_capacity(4096)
        .set_metrics(metrics)
        .use_smart_sra(&fixture.graph);
    if (with_retry) options.set_retry(RetryOptions{});
    if (with_mining) options.set_mining(mine::MinerOptions{});
    Result<std::unique_ptr<StreamEngine>> engine =
        StreamEngine::Create(std::move(options), &sink);
    if (!engine.ok()) {
      state.SkipWithError("create failed");
      break;
    }
    if (!OfferAllBatched(engine->get(), fixture.log_refs)) {
      state.SkipWithError("offer failed");
      break;
    }
    if (!(*engine)->Finish().ok()) state.SkipWithError("finish failed");
    records += fixture.log.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}

void BM_StreamEngineSharded(benchmark::State& state) {
  StreamEngineShardedLoop(state, nullptr);
}
BENCHMARK(BM_StreamEngineSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same workload with the wum::obs registry attached: the spread against
// BM_StreamEngineSharded is the live cost of metrics (counter mirrors
// plus drain/sessionize latency timers); the null-registry runs above
// measure the disabled mode, which must stay within ~2% of the seed.
void BM_StreamEngineShardedMetrics(benchmark::State& state) {
  StreamEngineShardedLoop(state, &BenchMetricsRegistry());
}
BENCHMARK(BM_StreamEngineShardedMetrics)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same workload with the wum::mine tap at default options (top-10,
// lengths 2..3, derived capacity): the spread against
// BM_StreamEngineSharded is the live cost of online path mining —
// batched hand-off on the serialized emit path plus the SpaceSaving
// offers. The CI gate holds this arm to >= 0.92x of the plain sharded
// baseline.
void BM_StreamEngineShardedMining(benchmark::State& state) {
  StreamEngineShardedLoop(state, nullptr, /*with_retry=*/false,
                          /*with_mining=*/true);
}
BENCHMARK(BM_StreamEngineShardedMining)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end latency tracking cost: with a registry attached the
// threaded driver stamps every batch at accept (one clock read on the
// producer side), the emit hub reads the clock per emitted session to
// feed the ingest_to_emit_latency_us histogram, and the sessionizer
// maintains the per-shard event-time watermark. The spread against
// BM_StreamEngineSharded is the full price of the live-telemetry path;
// the CI gate holds this arm to >= 0.92x of its committed baseline so
// the instrumentation can never quietly grow a per-record clock read.
void BM_StreamEngineShardedLatencyTracking(benchmark::State& state) {
  StreamEngineShardedLoop(state, &BenchMetricsRegistry());
}
BENCHMARK(BM_StreamEngineShardedLatencyTracking)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Tracing cost of the same workload. state.range(1) selects the mode:
// 0 attaches no recorder, so every ScopedSpan in the pipeline takes its
// disabled single-branch no-op path without ever reading the clock —
// this arm must stay within ~2% of the null-registry
// BM_StreamEngineSharded baseline; 1 attaches a live TraceRecorder, so
// the spread against the 0 arm is the enabled-mode recording cost (two
// clock reads plus a lock-free ring push per stage). The fixture's
// ~37k-record replay exceeds the default per-thread ring capacity, so
// the enabled arm also exercises the drop-oldest overwrite path
// (dropped events are surfaced in the trace_dropped counter).
void BM_StreamEngineShardedTracing(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const bool enabled = state.range(1) != 0;
  std::size_t records = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    std::unique_ptr<obs::TraceRecorder> recorder;
    if (enabled) recorder = std::make_unique<obs::TraceRecorder>();
    CallbackSessionSink sink(
        [](const std::string&, Session) { return Status::OK(); });
    EngineOptions options;
    options.set_num_shards(shards)
        .set_queue_capacity(4096)
        .set_trace(recorder.get())
        .use_smart_sra(&fixture.graph);
    Result<std::unique_ptr<StreamEngine>> engine =
        StreamEngine::Create(std::move(options), &sink);
    if (!engine.ok()) {
      state.SkipWithError("create failed");
      break;
    }
    if (!OfferAllBatched(engine->get(), fixture.log_refs)) {
      state.SkipWithError("offer failed");
      break;
    }
    if (!(*engine)->Finish().ok()) state.SkipWithError("finish failed");
    if (recorder != nullptr) {
      events += recorder->events_recorded();
      dropped += recorder->events_dropped();
    }
    records += fixture.log.size();
  }
  state.counters["trace_events"] =
      benchmark::Counter(static_cast<double>(events));
  state.counters["trace_dropped"] =
      benchmark::Counter(static_cast<double>(dropped));
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StreamEngineShardedTracing)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same workload with the per-shard RetryingSink decorator on the emit
// path (set_retry, default policy) and a sink that never fails: the
// spread against BM_StreamEngineSharded is the happy-path cost of the
// fault-tolerance layer, which should be one branch per emission.
void BM_StreamEngineShardedRetrying(benchmark::State& state) {
  StreamEngineShardedLoop(state, nullptr, /*with_retry=*/true);
}
BENCHMARK(BM_StreamEngineShardedRetrying)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same sharded workload with durable checkpointing at a fixed record
// cadence (state.range(1)): the spread against BM_StreamEngineSharded at
// the same shard count is the cost of the checkpoint barrier plus the
// epoch-directory writes. The fixture replays ~37k records, so the 20k
// cadence takes one checkpoint per iteration and the 5k cadence seven;
// the per-checkpoint cost they reveal bounds the production target of
// <10% throughput overhead at a 100k-record cadence.
void BM_StreamEngineShardedCheckpointing(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t every = static_cast<std::size_t>(state.range(1));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "wum_bench_ckpt").string();
  std::size_t records = 0;
  std::uint64_t checkpoints = 0;
  for (auto _ : state) {
    CallbackSessionSink sink(
        [](const std::string&, Session) { return Status::OK(); });
    EngineOptions options;
    options.set_num_shards(shards)
        .set_queue_capacity(4096)
        .use_smart_sra(&fixture.graph);
    Result<std::unique_ptr<StreamEngine>> engine =
        StreamEngine::Create(std::move(options), &sink);
    if (!engine.ok()) {
      state.SkipWithError("create failed");
      break;
    }
    // Batched offer with batches chopped at the checkpoint cadence, so
    // each checkpoint lands at exactly the same record offset as the
    // old per-record loop.
    const std::span<const LogRecordRef> refs(fixture.log_refs);
    for (std::size_t i = 0; i < refs.size();) {
      const std::size_t to_cadence = every - (i % every);
      const std::size_t n =
          std::min({kOfferBatchSize, to_cadence, refs.size() - i});
      if (!(*engine)->OfferBatch(refs.subspan(i, n)).ok()) {
        state.SkipWithError("offer failed");
        break;
      }
      i += n;
      if (i % every == 0) {
        if (!(*engine)->Checkpoint(dir).ok()) {
          state.SkipWithError("checkpoint failed");
          break;
        }
        ++checkpoints;
      }
    }
    if (!(*engine)->Finish().ok()) state.SkipWithError("finish failed");
    records += fixture.log.size();
  }
  std::filesystem::remove_all(dir);
  state.counters["checkpoints"] =
      benchmark::Counter(static_cast<double>(checkpoints));
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_StreamEngineShardedCheckpointing)
    ->Args({4, 20000})
    ->Args({4, 5000})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TopologyGeneration(benchmark::State& state) {
  SiteGeneratorOptions options;
  options.num_pages = static_cast<std::size_t>(state.range(0));
  options.mean_out_degree = 15.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(GenerateUniformSite(options, &rng));
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(300)->Arg(3000);

void BM_SubstringCapture(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  // Typical capture query: short needle against a reconstruction set.
  std::vector<std::vector<PageId>> haystacks;
  SmartSra sra(&fixture.graph);
  for (std::size_t i = 0; i < 50; ++i) {
    Result<std::vector<Session>> sessions =
        sra.Reconstruct(fixture.streams[i]);
    for (const Session& session : *sessions) {
      haystacks.push_back(session.PageSequence());
    }
  }
  const std::vector<PageId> needle =
      haystacks.empty() ? std::vector<PageId>{1, 2}
                        : haystacks.front();
  for (auto _ : state) {
    bool hit = false;
    for (const auto& haystack : haystacks) {
      hit |= ContainsAsSubstring(haystack, needle);
    }
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_SubstringCapture);

void BM_MineContiguousPatterns(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  SmartSra sra(&fixture.graph);
  std::vector<std::vector<PageId>> sequences;
  for (const auto& stream : fixture.streams) {
    Result<std::vector<Session>> sessions = sra.Reconstruct(stream);
    for (const Session& session : *sessions) {
      sequences.push_back(session.PageSequence());
    }
  }
  AprioriOptions options;
  options.min_support = std::max<std::size_t>(2, sequences.size() / 200);
  AprioriAllMiner miner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.Mine(sequences));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sequences.size()));
}
BENCHMARK(BM_MineContiguousPatterns)->Unit(benchmark::kMillisecond);

void BM_SimulateAgent(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  AgentSimulator simulator(&fixture.graph, AgentProfile());
  Rng rng(5);
  for (auto _ : state) {
    Rng agent_rng = rng.Fork();
    benchmark::DoNotOptimize(simulator.SimulateAgent(0, &agent_rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateAgent);

// Console reporter that additionally captures records/sec per benchmark
// so main can dump a machine-readable snapshot (WUM_BENCH_JSON_OUT) for
// the CI bench-regression gate. Only per-iteration runs carry the
// items_per_second counter we want; aggregates and errors are skipped.
class ThroughputCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        records_per_second_[run.benchmark_name()] = it->second.value;
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// name -> records/sec for every completed benchmark that reported
  /// SetItemsProcessed.
  const std::map<std::string, double>& records_per_second() const {
    return records_per_second_;
  }

 private:
  std::map<std::string, double> records_per_second_;
};

/// Writes `{"records_per_second": {"BM_...": 123.0, ...}}` to `path`.
bool WriteThroughputJson(const std::map<std::string, double>& rates,
                         const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"records_per_second\": {";
  bool first = true;
  for (const auto& [name, rate] : rates) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << std::fixed
        << static_cast<std::int64_t>(rate);
    first = false;
  }
  out << "\n  }\n}\n";
  return out.good();
}

}  // namespace
}  // namespace wum

// Custom main (instead of BENCHMARK_MAIN) so the run can end with a
// registry snapshot dump (WUM_METRICS_OUT) and a machine-readable
// throughput snapshot (WUM_BENCH_JSON_OUT) for CI artifacts.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  wum::ThroughputCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* bench_json_out = std::getenv("WUM_BENCH_JSON_OUT");
  if (bench_json_out != nullptr && *bench_json_out != '\0') {
    if (!wum::WriteThroughputJson(reporter.records_per_second(),
                                  bench_json_out)) {
      std::cerr << "bench json dump failed: " << bench_json_out << "\n";
      return 1;
    }
    std::cerr << "wrote throughput snapshot to " << bench_json_out << "\n";
  }
  const char* metrics_out = std::getenv("WUM_METRICS_OUT");
  if (metrics_out != nullptr && *metrics_out != '\0') {
    wum::Status status = wum::obs::WriteMetricsFile(
        wum::BenchMetricsRegistry().Snapshot(), metrics_out);
    if (!status.ok()) {
      std::cerr << "metrics dump failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "wrote metrics snapshot to " << metrics_out << "\n";
  }
  return 0;
}
