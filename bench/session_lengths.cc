// Session-length study: §2.2 argues navigation-oriented sessions "tend
// to become much longer due to insertion of backward movements" and that
// mining such sessions is harder; §6 claims Smart-SRA's sessions are
// "much shorter and therefore easier to process". This bench prints the
// reconstructed-session length distributions per heuristic plus the
// downstream mining cost on each heuristic's output.

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "wum/common/histogram.h"
#include "wum/common/table.h"
#include "wum/mining/apriori_all.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Session-length study",
                               "reconstruction heuristic");

  wum::Rng site_rng(config.seed);
  wum::WebGraph graph =
      *wum::GenerateUniformSite(config.site, &site_rng);
  std::uint64_t state = config.seed;
  (void)wum::SplitMix64(&state);
  wum::Rng workload_rng(wum::SplitMix64(&state));
  wum::Workload workload = *wum::SimulateWorkload(
      graph, config.profile, config.workload, &workload_rng);

  wum::Table table({"heuristic", "sessions", "mean len", "p50", "p95", "max",
                    "patterns(sup>=0.2%)", "mine ms"});
  for (const auto& heuristic :
       wum::MakePaperHeuristics(&graph, config.thresholds)) {
    wum::Histogram lengths(0, 64, 64);
    std::vector<std::vector<wum::PageId>> sequences;
    for (const auto& [ip, stream] : wum::BuildIpStreams(workload)) {
      wum::Result<std::vector<wum::Session>> sessions =
          heuristic->Reconstruct(stream);
      if (!sessions.ok()) {
        std::cerr << heuristic->name()
                  << " failed: " << sessions.status().ToString() << "\n";
        return 1;
      }
      for (const wum::Session& session : *sessions) {
        lengths.Add(static_cast<double>(session.size()));
        sequences.push_back(session.PageSequence());
      }
    }
    // Mine frequent contiguous paths over this heuristic's output.
    wum::AprioriOptions mining;
    mining.min_support =
        std::max<std::size_t>(2, sequences.size() / 500);  // ~0.2%
    mining.mode = wum::MatchMode::kContiguous;
    wum::AprioriAllMiner miner(mining);
    const Clock::time_point start = Clock::now();
    wum::Result<std::vector<wum::SequentialPattern>> patterns =
        miner.Mine(sequences);
    const double mine_ms = MillisSince(start);
    if (!patterns.ok()) {
      std::cerr << "mining failed: " << patterns.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({heuristic->name(), std::to_string(sequences.size()),
                  wum::FormatDouble(lengths.stats().mean(), 2),
                  wum::FormatDouble(lengths.Quantile(0.5), 1),
                  wum::FormatDouble(lengths.Quantile(0.95), 1),
                  wum::FormatDouble(lengths.stats().max(), 0),
                  std::to_string(patterns->size()),
                  wum::FormatDouble(mine_ms, 1)});
  }
  table.Render(&std::cout);
  std::cout << "\n# Real (ground-truth) session lengths for reference:\n";
  wum::Histogram real_lengths(0, 64, 64);
  for (const wum::AgentRun& agent : workload.agents) {
    for (const wum::Session& session : agent.trace.real_sessions) {
      real_lengths.Add(static_cast<double>(session.size()));
    }
  }
  std::cout << "# mean=" << wum::FormatDouble(real_lengths.stats().mean(), 2)
            << " p50=" << wum::FormatDouble(real_lengths.Quantile(0.5), 1)
            << " p95=" << wum::FormatDouble(real_lengths.Quantile(0.95), 1)
            << " max=" << wum::FormatDouble(real_lengths.stats().max(), 0)
            << "\n";
  return 0;
}
