// Referrer ablation: what would richer (Combined-format) log data buy?
// §1 argues proactive strategies with extra instrumentation see more
// than reactive CLF processing; the Referer header is the reactive-world
// equivalent of that extra information. This bench adds the referrer-
// chaining oracle (heur5) next to the paper's four CLF-only heuristics
// across the LPP sweep — the behaviour dimension where the missing
// information hurts most.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"
#include "wum/session/referrer_heuristic.h"

namespace {

// Replicates RunExperimentPoint's seeding so heur5 scores against the
// exact workload the heur1-4 scores come from.
wum::Result<wum::Workload> PointWorkload(const wum::ExperimentConfig& config,
                                         const wum::WebGraph& graph,
                                         double lpp, std::size_t index) {
  wum::AgentProfile profile = config.profile;
  profile.lpp = lpp;
  std::uint64_t state = config.seed;
  (void)wum::SplitMix64(&state);
  state += static_cast<std::uint64_t>(wum::SweepParameter::kLpp) *
               0x9E3779B9ULL +
           index + 1;
  wum::Rng rng(wum::SplitMix64(&state));
  return wum::SimulateWorkload(graph, profile, config.workload, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Referrer ablation",
                               "LPP, with the Referer-header oracle added");

  wum::Rng site_rng(config.seed);
  wum::Result<wum::WebGraph> graph =
      wum::GenerateUniformSite(config.site, &site_rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  wum::ReferrerSessionizer oracle(&graph.ValueOrDie());
  wum::AccuracyEvaluator evaluator(&graph.ValueOrDie(), config.thresholds,
                                   config.accuracy);

  wum::Table table({"LPP %", "heur1 %", "heur2 %", "heur3 %", "heur4 %",
                    "heur5-referrer %", "heur5 vs heur4"});
  std::size_t index = 0;
  for (double lpp : {0.0, 0.3, 0.6, 0.9}) {
    wum::Result<wum::SweepPoint> point =
        wum::RunExperimentPoint(config, wum::SweepParameter::kLpp, lpp, index);
    if (!point.ok()) {
      std::cerr << point.status().ToString() << "\n";
      return 1;
    }
    wum::Result<wum::Workload> workload =
        PointWorkload(config, *graph, lpp, index);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    std::map<std::string, std::vector<wum::Session>> reconstructions;
    for (const auto& [ip, stream] : wum::BuildIpReferredStreams(*workload)) {
      wum::Result<std::vector<wum::Session>> sessions =
          oracle.Reconstruct(stream);
      if (!sessions.ok()) {
        std::cerr << sessions.status().ToString() << "\n";
        return 1;
      }
      reconstructions[ip] = std::move(sessions).ValueOrDie();
    }
    wum::AccuracyResult oracle_result =
        evaluator.ScoreReconstructions(*workload, reconstructions);

    std::vector<std::string> row{wum::FormatDouble(lpp * 100.0, 0)};
    for (const wum::HeuristicScore& score : point->scores) {
      row.push_back(wum::FormatDouble(score.result.accuracy() * 100.0, 2));
    }
    row.push_back(wum::FormatDouble(oracle_result.accuracy() * 100.0, 2));
    const double heur4 = point->scores.back().result.accuracy();
    row.push_back(wum::FormatRelativeMargin(
        heur4 > 0 ? oracle_result.accuracy() / heur4 - 1.0 : 0.0));
    table.AddRow(std::move(row));
    ++index;
  }
  table.Render(&std::cout);
  std::cout << "\n# heur5 consumes the Referer field the CLF-only setting "
               "lacks; the gap to heur4 is the\n"
            << "# price of reactive seven-attribute data (it is not 100% "
               "because sessions interrupted\n"
            << "# by cache-served forward revisits are invisible to any "
               "server-side method).\n";
  return 0;
}
