// Figure 9 reproduction: real accuracy vs LPP (0%..90%), STP = 5%,
// NIP = 30%. Paper shape: every heuristic degrades as backtracking
// grows (sessions interleave through the browser cache); Smart-SRA stays
// clearly ahead across the whole range.

#include "bench_util.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Figure 9",
                               "LPP (link-from-previous-pages probability)");
  return wum_bench::RunFigureSweep(config, wum::SweepParameter::kLpp,
                                   wum::Figure9LppValues(), args);
}
