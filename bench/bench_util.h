// Shared plumbing for the figure/ablation bench binaries: light CLI
// parsing and the standard header block describing the Table 5 setup.

#ifndef WEBSRA_BENCH_BENCH_UTIL_H_
#define WEBSRA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "wum/common/string_util.h"
#include "wum/eval/experiment.h"
#include "wum/eval/report.h"

namespace wum_bench {

/// Options every figure bench accepts:
///   --agents N   population size (default: paper's 10000)
///   --seed S     master seed
///   --quick      600 agents; for smoke runs and CI
///   --csv PATH   also write the series as CSV
///   --threads N  sweep worker threads (0 = hardware)
struct BenchArgs {
  std::size_t agents = 10000;
  std::uint64_t seed = 20060102;
  std::string csv_path;
  std::size_t threads = 0;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--agents") {
      args.agents = static_cast<std::size_t>(
          wum::ParseUint64(next_value()).ValueOr(10000));
    } else if (arg == "--seed") {
      args.seed = wum::ParseUint64(next_value()).ValueOr(20060102);
    } else if (arg == "--quick") {
      args.agents = 600;
    } else if (arg == "--csv") {
      args.csv_path = next_value();
    } else if (arg == "--threads") {
      args.threads =
          static_cast<std::size_t>(wum::ParseUint64(next_value()).ValueOr(0));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--agents N] [--seed S] [--quick] "
                   "[--csv PATH] [--threads N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

inline wum::ExperimentConfig ConfigFromArgs(const BenchArgs& args) {
  wum::ExperimentConfig config = wum::PaperDefaults();
  config.workload.num_agents = args.agents;
  config.seed = args.seed;
  config.num_threads = args.threads;
  return config;
}

inline void PrintConfigHeader(const wum::ExperimentConfig& config,
                              const std::string& figure,
                              const std::string& swept) {
  std::cout << "# " << figure << ": real accuracy of the four reactive\n"
            << "# heuristics vs " << swept
            << " (other behaviour parameters fixed at Table 5 values).\n"
            << "#\n"
            << "# Table 5 setup: pages=" << config.site.num_pages
            << " mean_out_degree=" << config.site.mean_out_degree
            << " agents=" << config.workload.num_agents
            << " stay=" << config.profile.page_stay_mean_minutes << "+-"
            << config.profile.page_stay_stddev_minutes << "min\n"
            << "# STP=" << config.profile.stp
            << " LPP=" << config.profile.lpp << " NIP=" << config.profile.nip
            << " delta=30min rho=10min seed=" << config.seed << "\n"
            << "#\n";
}

inline int RunFigureSweep(const wum::ExperimentConfig& config,
                          wum::SweepParameter parameter,
                          const std::vector<double>& values,
                          const BenchArgs& args) {
  wum::Result<std::vector<wum::SweepPoint>> points =
      wum::RunSweep(config, parameter, values);
  if (!points.ok()) {
    std::cerr << "sweep failed: " << points.status().ToString() << "\n";
    return 1;
  }
  wum::RenderSweepTable(*points, parameter, &std::cout);
  std::cout << "\n# shape: " << wum::SummarizeSweepShape(*points) << "\n";
  if (!args.csv_path.empty()) {
    std::ofstream csv(args.csv_path);
    if (!csv) {
      std::cerr << "cannot open " << args.csv_path << "\n";
      return 1;
    }
    wum::RenderSweepCsv(*points, parameter, &csv);
    std::cout << "# csv written to " << args.csv_path << "\n";
  }
  return 0;
}

}  // namespace wum_bench

#endif  // WEBSRA_BENCH_BENCH_UTIL_H_
