// Threshold ablation: the paper adopts delta = 30 min and rho = 10 min
// from Catledge & Pitkow. This bench sweeps both thresholds for
// Smart-SRA (all four heuristics shown for context) to quantify how
// sensitive the headline result is to the folklore constants.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"

namespace {

int RunThresholdTable(const wum::ExperimentConfig& base,
                      const std::string& swept,
                      const std::vector<wum::TimeThresholds>& settings,
                      const std::vector<std::string>& labels) {
  wum::Table table({swept, "heur1 %", "heur2 %", "heur3 %", "heur4 %",
                    "heur4 vs best other"});
  for (std::size_t i = 0; i < settings.size(); ++i) {
    wum::ExperimentConfig config = base;
    config.thresholds = settings[i];
    wum::Result<wum::SweepPoint> point = wum::RunExperimentPoint(
        config, wum::SweepParameter::kStp, config.profile.stp, i);
    if (!point.ok()) {
      std::cerr << "run failed: " << point.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{labels[i]};
    for (const wum::HeuristicScore& score : point->scores) {
      row.push_back(wum::FormatDouble(score.result.accuracy() * 100.0, 2));
    }
    row.push_back(
        wum::FormatRelativeMargin(wum::SmartSraRelativeMargin(*point)));
    table.AddRow(std::move(row));
  }
  table.Render(&std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig base = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(base, "Threshold ablation",
                               "delta / rho (behaviour fixed)");

  std::cout << "# Sweep rho (page-stay bound), delta fixed at 30 min:\n";
  std::vector<wum::TimeThresholds> rho_settings;
  std::vector<std::string> rho_labels;
  for (int minutes : {2, 5, 10, 20, 30}) {
    rho_settings.push_back(
        wum::TimeThresholds{wum::Minutes(30), wum::Minutes(minutes)});
    rho_labels.push_back("rho = " + std::to_string(minutes) + " min");
  }
  if (int rc = RunThresholdTable(base, "rho", rho_settings, rho_labels)) {
    return rc;
  }

  std::cout << "\n# Sweep delta (session-duration bound), rho fixed at 10 "
               "min:\n";
  std::vector<wum::TimeThresholds> delta_settings;
  std::vector<std::string> delta_labels;
  for (int minutes : {10, 20, 30, 60, 120}) {
    delta_settings.push_back(
        wum::TimeThresholds{wum::Minutes(minutes), wum::Minutes(10)});
    delta_labels.push_back("delta = " + std::to_string(minutes) + " min");
  }
  return RunThresholdTable(base, "delta", delta_settings, delta_labels);
}
