// Figure 8 reproduction: real accuracy vs STP (1%..20%), LPP = NIP = 30%.
// Paper shape: all four heuristics improve as STP grows (shorter agent
// histories mean fewer interleavings); Smart-SRA dominates at every point
// with a large, stable relative margin.

#include "bench_util.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Figure 8",
                               "STP (session termination probability)");
  return wum_bench::RunFigureSweep(config, wum::SweepParameter::kStp,
                                   wum::Figure8StpValues(), args);
}
