// Topology ablation: the paper evaluates on a uniform random site; real
// web graphs are heavy-tailed (its own citations [1, 8, 10]). This bench
// re-runs the Table 5 point on a preferential-attachment site and on
// out-degree variations, to show the heuristic ordering is not an
// artifact of the uniform model.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"
#include "wum/topology/graph_algorithms.h"

namespace {

void PrintDegreeProfile(const wum::ExperimentConfig& config) {
  wum::Rng rng(config.seed);
  wum::Result<wum::WebGraph> graph =
      wum::GenerateSite(config.topology_model, config.site, &rng);
  if (!graph.ok()) return;
  wum::DegreeStats stats = wum::ComputeDegreeStats(*graph);
  std::cout << "#   in-degree mean=" << wum::FormatDouble(
                   stats.in_degree.mean(), 2)
            << " max=" << stats.in_degree.max()
            << " stddev=" << wum::FormatDouble(stats.in_degree.stddev(), 2)
            << ", dead ends=" << stats.dead_ends << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig base = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(base, "Topology ablation",
                               "site model (behaviour fixed)");

  struct Variant {
    std::string label;
    wum::TopologyModel model;
    double mean_out_degree;
  };
  const Variant variants[] = {
      {"uniform, out-degree 15 (paper)", wum::TopologyModel::kUniform, 15.0},
      {"power-law, out-degree 15", wum::TopologyModel::kPowerLaw, 15.0},
      {"hierarchical, out-degree 15", wum::TopologyModel::kHierarchical,
       15.0},
      {"uniform, out-degree 5", wum::TopologyModel::kUniform, 5.0},
      {"power-law, out-degree 5", wum::TopologyModel::kPowerLaw, 5.0},
      {"hierarchical, out-degree 5", wum::TopologyModel::kHierarchical, 5.0},
      {"uniform, out-degree 40", wum::TopologyModel::kUniform, 40.0},
  };

  wum::Table table({"topology", "heur1 %", "heur2 %", "heur3 %", "heur4 %",
                    "heur4 vs best other"});
  for (const Variant& variant : variants) {
    wum::ExperimentConfig config = base;
    config.topology_model = variant.model;
    config.site.mean_out_degree = variant.mean_out_degree;
    std::cout << "# " << variant.label << ":\n";
    PrintDegreeProfile(config);
    wum::Result<wum::SweepPoint> point = wum::RunExperimentPoint(
        config, wum::SweepParameter::kStp, config.profile.stp, 0);
    if (!point.ok()) {
      std::cerr << "run failed: " << point.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{variant.label};
    for (const wum::HeuristicScore& score : point->scores) {
      row.push_back(wum::FormatDouble(score.result.accuracy() * 100.0, 2));
    }
    row.push_back(
        wum::FormatRelativeMargin(wum::SmartSraRelativeMargin(*point)));
    table.AddRow(std::move(row));
  }
  std::cout << "#\n";
  table.Render(&std::cout);
  return 0;
}
