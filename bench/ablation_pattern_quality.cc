// Pattern-quality ablation: the end goal of the paper's pipeline is the
// knowledge mined from the sessions, not the sessions themselves. This
// bench mines frequent navigation paths from each heuristic's output and
// from the ground truth, and reports precision / recall / F1 of the
// discovered pattern sets — Smart-SRA's session accuracy should
// translate directly into better mined knowledge.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"
#include "wum/eval/pattern_quality.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Pattern-quality ablation",
                               "reconstruction heuristic feeding the miner");

  wum::Rng site_rng(config.seed);
  wum::Result<wum::WebGraph> graph =
      wum::GenerateSite(config.topology_model, config.site, &site_rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::uint64_t state = config.seed;
  (void)wum::SplitMix64(&state);
  wum::Rng workload_rng(wum::SplitMix64(&state));
  wum::Result<wum::Workload> workload = wum::SimulateWorkload(
      *graph, config.profile, config.workload, &workload_rng);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  wum::PatternQualityOptions options;
  options.min_support_fraction = 0.001;
  options.min_pattern_length = 2;
  std::cout << "# contiguous navigation paths of length >= 2, relative "
               "support >= 0.1%\n";
  wum::Table table({"heuristic", "true patterns", "mined", "matched",
                    "precision %", "recall %", "F1 %",
                    "support distortion (bits)", "phantom length>=3"});
  for (const auto& heuristic :
       wum::MakePaperHeuristics(&graph.ValueOrDie(), config.thresholds)) {
    wum::Result<wum::PatternQuality> quality =
        wum::EvaluatePatternQuality(*workload, *heuristic, options);
    if (!quality.ok()) {
      std::cerr << heuristic->name() << ": " << quality.status().ToString()
                << "\n";
      return 1;
    }
    // Long paths frequent in the reconstruction but absent from the
    // ground truth: pure reconstruction artifacts (heur3's inserted
    // backward movements are the main source).
    wum::PatternQualityOptions long_options = options;
    long_options.min_pattern_length = 3;
    wum::Result<wum::PatternQuality> long_quality =
        wum::EvaluatePatternQuality(*workload, *heuristic, long_options);
    if (!long_quality.ok()) {
      std::cerr << long_quality.status().ToString() << "\n";
      return 1;
    }
    table.AddRow(
        {heuristic->name(), std::to_string(quality->true_patterns),
         std::to_string(quality->mined_patterns),
         std::to_string(quality->matched),
         wum::FormatDouble(quality->precision() * 100.0, 1),
         wum::FormatDouble(quality->recall() * 100.0, 1),
         wum::FormatDouble(quality->f1() * 100.0, 1),
         wum::FormatDouble(quality->mean_support_distortion, 3),
         std::to_string(long_quality->mined_patterns -
                        long_quality->matched)});
  }
  table.Render(&std::cout);
  std::cout << "\n# 'Support distortion' is the mean |log2| ratio between a "
               "matched pattern's relative\n"
            << "# support in the reconstruction and in the ground truth: "
               "giant merged sessions\n"
            << "# under-count repeated navigation, fragmented ones "
               "over-count it. 'Phantom length>=3'\n"
            << "# counts frequent long paths that exist only in the "
               "reconstruction, not in any real\n"
            << "# navigation (heur3's artificial backward movements "
               "manufacture them).\n";
  return 0;
}
