// Figure 10 reproduction: real accuracy vs NIP (0%..90%), STP = 5%,
// LPP = 30%. Paper shape: accuracy falls for every heuristic as session
// re-entry grows; Smart-SRA remains roughly twice as accurate as the
// best baseline.

#include "bench_util.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Figure 10",
                               "NIP (new-initial-page probability)");
  return wum_bench::RunFigureSweep(config, wum::SweepParameter::kNip,
                                   wum::Figure10NipValues(), args);
}
