// Proxy ablation: §1 motivates session reconstruction with "all users
// behind a proxy server will have the same IP number". This bench groups
// k agents behind one logged IP and measures how every heuristic decays
// as k grows — and that Smart-SRA's topology constraints make it the
// most robust de-interleaver.

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig base = wum_bench::ConfigFromArgs(args);
  // Proxy users must browse *concurrently* for their requests to
  // interleave; compress the arrival window from the default week to one
  // hour (otherwise grouped streams merely concatenate).
  base.workload.start_window = 3600;
  wum_bench::PrintConfigHeader(base, "Proxy ablation",
                               "agents sharing one client IP (1h arrival "
                               "window)");

  for (wum::UserIdentity identity :
       {wum::UserIdentity::kClientIp,
        wum::UserIdentity::kClientIpAndUserAgent}) {
    std::cout << "# user identification: "
              << (identity == wum::UserIdentity::kClientIp
                      ? "client IP only (CLF)"
                      : "client IP + user agent (Combined format)")
              << "\n";
    wum::Table table({"agents per IP", "heur1 recall %", "heur2 recall %",
                      "heur3 recall %", "heur4 recall %"});
    for (std::size_t group : {1u, 2u, 4u, 8u, 16u}) {
      wum::ExperimentConfig config = base;
      config.workload.agents_per_proxy = group;
      config.accuracy.identity = identity;
      wum::Result<wum::SweepPoint> point = wum::RunExperimentPoint(
          config, wum::SweepParameter::kStp, config.profile.stp, group);
      if (!point.ok()) {
        std::cerr << "run failed: " << point.status().ToString() << "\n";
        return 1;
      }
      std::vector<std::string> row{std::to_string(group)};
      for (const wum::HeuristicScore& score : point->scores) {
        row.push_back(
            wum::FormatDouble(score.result.capture_rate() * 100.0, 2));
      }
      table.AddRow(std::move(row));
    }
    table.Render(&std::cout);
    std::cout << "\n";
  }
  std::cout << "# Recall (real sessions still recoverable) is the right "
               "lens here: interleaved streams\n"
            << "# make Smart-SRA emit extra branch sessions, which would "
               "inflate the reconstruction-\n"
            << "# counting accuracy ratio. The user-agent refinement "
               "recovers part of the proxy loss:\n"
            << "# agents behind one IP with different browsers are "
               "separated again.\n";
  return 0;
}
