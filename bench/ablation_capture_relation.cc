// Capture-metric ablation: how much of Smart-SRA's margin depends on the
// metric interpretation? Four variants at Table 5 defaults:
//   substring vs gap-tolerant subsequence matching, each with and
//   without the §5.1 requirement that a reconstructed session satisfy
//   the timestamp + topology rules before it may capture.
// The paper's metric is substring + validity; the others quantify how
// the conclusions shift under laxer readings (notably: without the
// validity requirement, heur3's path completion looks artificially
// strong because its inserted backward movements are not penalized).

#include <iostream>

#include "bench_util.h"
#include "wum/common/table.h"
#include "wum/eval/berendt_measures.h"

int main(int argc, char** argv) {
  wum_bench::BenchArgs args = wum_bench::ParseArgs(argc, argv);
  wum::ExperimentConfig config = wum_bench::ConfigFromArgs(args);
  wum_bench::PrintConfigHeader(config, "Capture-relation ablation",
                               "metric definition (behaviour fixed)");

  struct Variant {
    const char* label;
    wum::AccuracyOptions options;
  };
  auto make_options = [](wum::AccuracyDefinition definition,
                         wum::CaptureRelation relation, bool validity) {
    wum::AccuracyOptions options;
    options.definition = definition;
    options.relation = relation;
    options.require_valid_sessions = validity;
    return options;
  };
  using wum::AccuracyDefinition;
  using wum::CaptureRelation;
  const Variant variants[] = {
      {"correct-reconstructions, substring + validity (paper)",
       make_options(AccuracyDefinition::kCorrectReconstructions,
                    CaptureRelation::kSubstring, true)},
      {"correct-reconstructions, substring, no validity",
       make_options(AccuracyDefinition::kCorrectReconstructions,
                    CaptureRelation::kSubstring, false)},
      {"correct-reconstructions, subsequence + validity",
       make_options(AccuracyDefinition::kCorrectReconstructions,
                    CaptureRelation::kSubsequence, true)},
      {"real-sessions-captured, substring + validity",
       make_options(AccuracyDefinition::kRealSessionsCaptured,
                    CaptureRelation::kSubstring, true)},
      {"real-sessions-captured, substring, no validity",
       make_options(AccuracyDefinition::kRealSessionsCaptured,
                    CaptureRelation::kSubstring, false)},
      {"real-sessions-captured, subsequence, no validity",
       make_options(AccuracyDefinition::kRealSessionsCaptured,
                    CaptureRelation::kSubsequence, false)},
  };

  wum::Table table({"metric", "heur1 %", "heur2 %", "heur3 %", "heur4 %",
                    "heur4 vs best other"});
  for (const Variant& variant : variants) {
    wum::ExperimentConfig variant_config = config;
    variant_config.accuracy = variant.options;
    wum::Result<wum::SweepPoint> point = wum::RunExperimentPoint(
        variant_config, wum::SweepParameter::kStp,
        variant_config.profile.stp, 0);
    if (!point.ok()) {
      std::cerr << "run failed: " << point.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{variant.label};
    for (const wum::HeuristicScore& score : point->scores) {
      row.push_back(wum::FormatDouble(score.result.accuracy() * 100.0, 2));
    }
    row.push_back(
        wum::FormatRelativeMargin(wum::SmartSraRelativeMargin(*point)));
    table.AddRow(std::move(row));
  }
  table.Render(&std::cout);

  // Reference [2]'s framework measures on the same workload: the
  // categorical exact-reconstruction ratio and the gradual best-match
  // LCS similarity.
  std::cout << "\n# Berendt et al. framework measures (paper ref. [2]):\n";
  wum::Rng site_rng(config.seed);
  wum::Result<wum::WebGraph> graph =
      wum::GenerateSite(config.topology_model, config.site, &site_rng);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::uint64_t state = config.seed;
  (void)wum::SplitMix64(&state);
  state += static_cast<std::uint64_t>(wum::SweepParameter::kStp) *
               0x9E3779B9ULL +
           1;
  wum::Rng workload_rng(wum::SplitMix64(&state));
  wum::Result<wum::Workload> workload = wum::SimulateWorkload(
      *graph, config.profile, config.workload, &workload_rng);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  wum::Table berendt({"heuristic", "exact reconstruction %",
                      "mean best LCS similarity %"});
  for (const auto& heuristic :
       wum::MakePaperHeuristics(&graph.ValueOrDie(), config.thresholds)) {
    wum::Result<wum::BerendtMeasures> measures =
        wum::EvaluateBerendtMeasures(*workload, *heuristic);
    if (!measures.ok()) {
      std::cerr << measures.status().ToString() << "\n";
      return 1;
    }
    berendt.AddRow({heuristic->name(),
                    wum::FormatDouble(measures->exact_ratio() * 100.0, 2),
                    wum::FormatDouble(
                        measures->mean_best_similarity() * 100.0, 2)});
  }
  berendt.Render(&std::cout);
  return 0;
}
